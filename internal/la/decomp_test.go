package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSquare(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	// Diagonal dominance keeps it comfortably nonsingular.
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)+1)
	}
	return a
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.5)
	}
	return a
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSquare(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(x[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewMatrix(2, 3)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		6, 1, 1,
		4, -2, 5,
		2, 8, 7,
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -306, 1e-9) {
		t.Fatalf("det = %v, want -306", f.Det())
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSquare(rng, 5)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	if prod.SubM(Identity(5)).MaxAbs() > 1e-9 {
		t.Fatalf("A·A⁻¹ deviates from I by %v", prod.SubM(Identity(5)).MaxAbs())
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSquare(rng, 4)
	xWant := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			xWant.Set(i, j, rng.NormFloat64())
		}
	}
	b := a.Mul(xWant)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if x.SubM(xWant).MaxAbs() > 1e-9 {
		t.Fatal("SolveMatrix inaccurate")
	}
}

func TestQRLeastSquaresExactFit(t *testing.T) {
	// Overdetermined but consistent: fit y = 2 + 3x with 5 exact points.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(5, 2)
	b := make([]float64, 5)
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	c, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c[0], 2, 1e-10) || !almostEq(c[1], 3, 1e-10) {
		t.Fatalf("coef = %v, want [2 3]", c)
	}
}

func TestQRNormalEquationsProperty(t *testing.T) {
	// The least-squares solution must satisfy Aᵀ(A·x − b) = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(8)
		n := 1 + rng.Intn(3)
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw: acceptable to refuse
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		g := a.T().MulVec(r)
		for _, v := range g {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQRUnderdetermined(t *testing.T) {
	if _, err := FactorQR(NewMatrix(2, 3)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.FullRank() {
		t.Fatal("rank-deficient matrix reported full rank")
	}
	if _, err := f.SolveLS([]float64{1, 2, 3}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRXtXInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewMatrix(8, 3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.XtXInverse()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Inverse(a.T().Mul(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.SubM(want).MaxAbs() > 1e-8 {
		t.Fatal("XtXInverse disagrees with direct inverse")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 6)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	if l.Mul(l.T()).SubM(a).MaxAbs() > 1e-9 {
		t.Fatal("L·Lᵀ != A")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 5)
	want := []float64{1, -2, 3, 0.5, -1}
	b := a.MulVec(want)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], want[i], 1e-8) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskyLogDetMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomSPD(rng, 4)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.LogDet(), math.Log(f.Det()), 1e-9) {
		t.Fatalf("logdet %v vs log(det) %v", c.LogDet(), math.Log(f.Det()))
	}
}

func TestEigenSymKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2}) // eigenvalues 1, 3
	vals, vecs, err := EigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 1, 1e-10) || !almostEq(vals[1], 3, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [1 3]", vals)
	}
	// Check A·v = λ·v for each pair.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av := a.MulVec(v)
		for i := range v {
			if !almostEq(av[i], vals[k]*v[i], 1e-9) {
				t.Fatalf("A·v != λ·v for pair %d", k)
			}
		}
	}
}

func TestEigenSymReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomSPD(rng, n)
		vals, vecs, err := EigenSym(a, 0)
		if err != nil {
			return false
		}
		// Rebuild V·D·Vᵀ.
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		rec := vecs.Mul(d).Mul(vecs.T())
		return rec.SubM(a).MaxAbs() < 1e-7*(1+a.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 7)
	vals, _, err := EigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("eigenvalues not ascending: %v", vals)
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := EigenSym(a, 0); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSpectralRadius(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{0.5, 0, 0, -0.9})
	r := SpectralRadius(a, 500)
	if !almostEq(r, 0.9, 1e-6) {
		t.Fatalf("spectral radius = %v, want 0.9", r)
	}
}

func TestConditionEstimate(t *testing.T) {
	// Identity has condition number 1; the estimate must be ≥ ~1 and small.
	c, err := ConditionEstimate(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.5 || c > 10 {
		t.Fatalf("cond(I) estimate = %v, want near 1", c)
	}
	// Singular matrix reports +Inf.
	s := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	c, err = ConditionEstimate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c, 1) {
		t.Fatalf("cond(singular) = %v, want +Inf", c)
	}
}
