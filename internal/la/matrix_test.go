package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixZero(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := Identity(2).Mul(a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != a.At(i, j) {
				t.Fatalf("I*A != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapePanic(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	a.Mul(b)
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := a.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims wrong")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != a.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := a.T().T()
		return b.SubM(a).MaxAbs() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowColCopies(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := a.Col(1)
	c[0] = 99
	if a.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestSetRow(t *testing.T) {
	a := NewMatrix(2, 3)
	a.SetRow(1, []float64{7, 8, 9})
	if a.At(1, 0) != 7 || a.At(1, 2) != 9 {
		t.Fatal("SetRow did not copy values")
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{4, 3, 2, 1})
	s := a.AddM(b)
	if s.At(0, 0) != 5 || s.At(1, 1) != 5 {
		t.Fatal("AddM wrong")
	}
	d := a.SubM(b)
	if d.At(0, 0) != -3 || d.At(1, 1) != 3 {
		t.Fatal("SubM wrong")
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatal("Scale wrong")
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Fatal("operands mutated")
	}
}

func TestNorms(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{3, 0, 0, -4})
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v, want 4", a.MaxAbs())
	}
	if !almostEq(a.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("Frobenius = %v, want 5", a.FrobeniusNorm())
	}
}

func TestIsSymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 3})
	if !a.IsSymmetric(0) {
		t.Fatal("expected symmetric")
	}
	a.Set(0, 1, 2.1)
	if a.IsSymmetric(1e-6) {
		t.Fatal("expected asymmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestStringContainsValues(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{1.5, -2})
	s := a.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.SubM(rhs).MaxAbs() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
