package la

import (
	"math"
	"math/rand"
	"testing"
)

// scalarStep3 is the reference per-lane update the batch kernel must match
// bit for bit — the exact expression sim's fastModel.step evaluates.
func scalarStep3(ad *[9]float64, bd *[6]float64, u float64, y *[3]float64) {
	y0, y1, y2 := y[0], y[1], y[2]
	y[0] = ad[0]*y0 + ad[1]*y1 + ad[2]*y2 + bd[0]*u + bd[1]
	y[1] = ad[3]*y0 + ad[4]*y1 + ad[5]*y2 + bd[2]*u + bd[3]
	y[2] = ad[6]*y0 + ad[7]*y1 + ad[8]*y2 + bd[4]*u + bd[5]
}

func TestStepLanes3MatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const lanes = 17
	var ad [9]float64
	var bd [6]float64
	for i := range ad {
		ad[i] = rng.NormFloat64()
	}
	for i := range bd {
		bd[i] = rng.NormFloat64()
	}
	y0 := make([]float64, lanes)
	y1 := make([]float64, lanes)
	y2 := make([]float64, lanes)
	want := make([][3]float64, lanes)
	for j := 0; j < lanes; j++ {
		y0[j], y1[j], y2[j] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		want[j] = [3]float64{y0[j], y1[j], y2[j]}
	}
	for step := 0; step < 50; step++ {
		u := rng.NormFloat64()
		// Step a strict sub-range too: partial runs must leave lanes
		// outside [from, to) untouched.
		from, to := 0, lanes
		if step%3 == 1 {
			from, to = 2, lanes-3
		}
		StepLanes3(&ad, &bd, u, y0, y1, y2, from, to)
		for j := from; j < to; j++ {
			scalarStep3(&ad, &bd, u, &want[j])
		}
		for j := 0; j < lanes; j++ {
			if math.Float64bits(y0[j]) != math.Float64bits(want[j][0]) ||
				math.Float64bits(y1[j]) != math.Float64bits(want[j][1]) ||
				math.Float64bits(y2[j]) != math.Float64bits(want[j][2]) {
				t.Fatalf("step %d lane %d: batch (%v,%v,%v) != scalar %v",
					step, j, y0[j], y1[j], y2[j], want[j])
			}
		}
	}
}

func TestStepLanes3ZeroAllocs(t *testing.T) {
	var ad [9]float64
	var bd [6]float64
	for i := range ad {
		ad[i] = 0.1 * float64(i)
	}
	y0 := make([]float64, 8)
	y1 := make([]float64, 8)
	y2 := make([]float64, 8)
	allocs := testing.AllocsPerRun(100, func() {
		StepLanes3(&ad, &bd, 0.5, y0, y1, y2, 0, 8)
	})
	if allocs != 0 {
		t.Fatalf("StepLanes3 allocates %v per call, want 0", allocs)
	}
}

func BenchmarkStepLanes3x16(b *testing.B) {
	var ad [9]float64
	var bd [6]float64
	for i := range ad {
		ad[i] = 0.01 * float64(i%5)
	}
	ad[0], ad[4], ad[8] = 0.99, 0.99, 0.99 // keep the iteration stable
	const lanes = 16
	y0 := make([]float64, lanes)
	y1 := make([]float64, lanes)
	y2 := make([]float64, lanes)
	for j := 0; j < lanes; j++ {
		y0[j] = float64(j) * 1e-3
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StepLanes3(&ad, &bd, 0.6, y0, y1, y2, 0, lanes)
	}
}
