package la

// StepLanes3 advances the 3-state update y ← Ad·y + Bd·u for every lane in
// [from, to) over structure-of-arrays state slices. All lanes in the range
// share the same baked matrices (ad, flat 3×3 row-major) and input channel
// (bd, flat 3×2 row-major; u the scalar input on channel 0, channel 1 the
// implicit constant 1).
//
// Bit-exactness contract: each lane's arithmetic must match the scalar
// per-lane form
//
//	o0 = ad[0]*y0 + ad[1]*y1 + ad[2]*y2 + bd[0]*u + bd[1]
//
// exactly. Only the lane-invariant *products* bd[0]*u, bd[2]*u, bd[4]*u are
// hoisted out of the loop — multiplication is a single rounding step, so
// hoisting it cannot change any lane's result. The sums are NOT refolded
// (e.g. bd[0]*u+bd[1] is not pre-added): that would replace two rounding
// steps at the end of the left-associative chain with a different tree and
// break bit-identity with the scalar engine.
func StepLanes3(ad *[9]float64, bd *[6]float64, u float64, y0, y1, y2 []float64, from, to int) {
	a00, a01, a02 := ad[0], ad[1], ad[2]
	a10, a11, a12 := ad[3], ad[4], ad[5]
	a20, a21, a22 := ad[6], ad[7], ad[8]
	u0, c0 := bd[0]*u, bd[1]
	u1, c1 := bd[2]*u, bd[3]
	u2, c2 := bd[4]*u, bd[5]
	y0, y1, y2 = y0[from:to], y1[from:to], y2[from:to]
	for j := range y0 {
		s0, s1, s2 := y0[j], y1[j], y2[j]
		y0[j] = a00*s0 + a01*s1 + a02*s2 + u0 + c0
		y1[j] = a10*s0 + a11*s1 + a12*s2 + u1 + c1
		y2[j] = a20*s0 + a21*s1 + a22*s2 + u2 + c2
	}
}
