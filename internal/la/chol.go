package la

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ. It is used for D-optimal design scoring
// (log-determinants of information matrices) and for sampling.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a. It returns ErrSingular if a is not positive
// definite to working precision.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, ErrShape
	}
	n := a.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// LogDet returns log(det A) = 2·Σ log L_ii. This is the D-optimality
// criterion evaluated on an information matrix.
func (c *Cholesky) LogDet() float64 {
	var s float64
	n := c.l.rows
	for i := 0; i < n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// LogDetSPD returns log(det a) for a symmetric positive definite matrix, or
// ErrSingular if a is not SPD.
func LogDetSPD(a *Matrix) (float64, error) {
	c, err := FactorCholesky(a)
	if err != nil {
		return 0, err
	}
	return c.LogDet(), nil
}
