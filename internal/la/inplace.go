package la

// In-place kernel variants. These exist for the hot paths — the matrix
// exponential and the ZOH rebuild of the fast simulation engine — where the
// allocating Mul/AddM/SubM/Scale would otherwise churn ~20 small matrices
// per call. Each variant performs exactly the same floating-point
// operations in the same order as its allocating counterpart, so swapping
// one in never changes a result bit.

// CopyInto copies a into dst. Shapes must match.
func CopyInto(dst, a *Matrix) {
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
	copy(dst.data, a.data)
}

// MulInto computes the product a·b into dst. dst must not alias either
// operand; shapes must be compatible.
func MulInto(dst, a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	if dst == a || dst == b {
		panic("la: MulInto destination aliases an operand")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
}

// AddInto computes a + b into dst. Element-wise, so dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto computes a − b into dst. Element-wise, so dst may alias a or b.
func SubInto(dst, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// ScaleInto computes s·a into dst. Element-wise, so dst may alias a.
func ScaleInto(dst, a *Matrix, s float64) {
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] * s
	}
}

// SetIdentity overwrites the square matrix m with the identity.
func SetIdentity(m *Matrix) {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}
