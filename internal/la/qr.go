package la

import "math"

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n):
// A = Q·R with Q orthogonal (m×m, stored implicitly) and R upper
// triangular (n×n). It is the backbone of the response-surface
// least-squares fits: solving min‖Ax−b‖₂ via QR avoids forming the
// normal equations and their squared condition number.
type QR struct {
	qr   *Matrix   // Householder vectors below the diagonal, R on/above
	rd   []float64 // diagonal of R
	m, n int
}

// FactorQR computes the Householder QR factorization of a (rows ≥ cols).
func FactorQR(a *Matrix) (*QR, error) {
	if a.rows < a.cols {
		return nil, ErrShape
	}
	m, n := a.rows, a.cols
	qr := a.Clone()
	rd := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rd[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Add(k, k, 1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
		rd[k] = -nrm
	}
	return &QR{qr: qr, rd: rd, m: m, n: n}, nil
}

// FullRank reports whether A has full column rank to working precision:
// every diagonal entry of R must exceed a small multiple of the largest one.
func (f *QR) FullRank() bool {
	var mx float64
	for _, d := range f.rd {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return false
	}
	tol := 1e-12 * float64(f.m) * mx
	for _, d := range f.rd {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// RDiag returns a copy of the diagonal of R. The ratio
// max|R_ii|/min|R_ii| is a cheap rank/conditioning diagnostic for design
// matrices.
func (f *QR) RDiag() []float64 {
	out := make([]float64, len(f.rd))
	copy(out, f.rd)
	return out
}

// SolveLS returns the least-squares solution x minimizing ‖A·x − b‖₂.
func (f *QR) SolveLS(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, ErrShape
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, f.m)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < f.n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rd[i]
	}
	return x, nil
}

// RInverse returns R⁻¹ (n×n upper triangular). (XᵀX)⁻¹ = R⁻¹·R⁻ᵀ gives the
// coefficient covariance scaling used in RSM significance tests.
func (f *QR) RInverse() (*Matrix, error) {
	if !f.FullRank() {
		return nil, ErrSingular
	}
	n := f.n
	inv := NewMatrix(n, n)
	for col := 0; col < n; col++ {
		// Solve R·x = e_col.
		x := make([]float64, n)
		x[col] = 1
		for i := col; i >= 0; i-- {
			s := x[i]
			for j := i + 1; j <= col; j++ {
				s -= f.qr.At(i, j) * x[j]
			}
			x[i] = s / f.rd[i]
		}
		for i := 0; i <= col; i++ {
			inv.Set(i, col, x[i])
		}
	}
	return inv, nil
}

// XtXInverse returns (AᵀA)⁻¹ = R⁻¹·R⁻ᵀ.
func (f *QR) XtXInverse() (*Matrix, error) {
	ri, err := f.RInverse()
	if err != nil {
		return nil, err
	}
	return ri.Mul(ri.T()), nil
}

// LeastSquares solves min‖a·x − b‖₂ directly (convenience wrapper).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveLS(b)
}
