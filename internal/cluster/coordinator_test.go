package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// testProblem is the standard 4-factor problem with a fast deterministic
// fake engine: every response is a pure function of the design point, so
// fleet and local runs are comparable bit-for-bit without real simulation
// cost. EngineName is set so the runner chain (cache, fault injector) is
// exercised; the Direct runner keeps tests isolated from the process-wide
// cache.
func testProblem(excite, horizon float64) *core.Problem {
	p := core.StandardProblem(excite, horizon)
	p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		// A token per-point cost so multi-worker tests genuinely interleave
		// instead of one worker draining the whole queue between polls.
		time.Sleep(200 * time.Microsecond)
		r := &sim.Result{
			AvgHarvestedPower: d.Node.Period * 1e-6,
			StoredEnergyEnd:   d.Store.C,
			FinalStoreV:       3,
			UptimeFraction:    d.Store.C * 5,
			NetEnergyMargin:   1e-3 * d.Node.Period,
		}
		r.Node.Packets = int(d.Node.Period)
		r.Node.FirstTxTime = d.Node.Period / 2
		return r, nil
	}
	p.EngineName = "clustertest"
	p.Runner = simcache.Direct{}
	return p
}

func testSpec() JobSpec {
	p := testProblem(0.6, 2)
	return JobSpec{ID: "job-test", Excite: 0.6, Horizon: 2, Responses: p.Responses}
}

func testDesign(t *testing.T) *doe.Design {
	t.Helper()
	d, err := core.NamedDesign("ccf", 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fastConfig shrinks the failure detectors for tests.
func fastConfig() Config {
	return Config{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		LeaseTimeout:      time.Minute,
		LeasePoints:       4,
		PollInterval:      2 * time.Millisecond,
		Tick:              10 * time.Millisecond,
	}
}

// localDataset runs the design locally — the reference for bit-identical
// comparisons.
func localDataset(t *testing.T, design *doe.Design) *core.Dataset {
	t.Helper()
	ds, err := testProblem(0.6, 2).RunDesignContext(context.Background(), design, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// sameY asserts two datasets carry bitwise-identical response columns.
func sameY(t *testing.T, got, want *core.Dataset) {
	t.Helper()
	if len(got.Y) != len(want.Y) {
		t.Fatalf("got %d response columns, want %d", len(got.Y), len(want.Y))
	}
	for id, wcol := range want.Y {
		gcol, ok := got.Y[id]
		if !ok {
			t.Fatalf("missing response column %q", id)
		}
		if len(gcol) != len(wcol) {
			t.Fatalf("response %q has %d rows, want %d", id, len(gcol), len(wcol))
		}
		for i := range wcol {
			if gcol[i] != wcol[i] {
				t.Fatalf("response %q row %d: got %v, want %v (not bit-identical)", id, i, gcol[i], wcol[i])
			}
		}
	}
}

// runPoints computes the worker-side answer for a lease, the way a real
// worker would.
func runPoints(t *testing.T, l *LeaseView) []PointResult {
	t.Helper()
	p := testProblem(l.Excite, l.Horizon)
	out := make([]PointResult, 0, len(l.Points))
	for _, pt := range l.Points {
		vals, _, err := p.RunPoint(context.Background(), pt.Index, pt.Coded)
		if err != nil {
			t.Fatalf("point %d: %v", pt.Index, err)
		}
		values := make(map[string]float64, len(vals))
		for id, v := range vals {
			values[string(id)] = v
		}
		out = append(out, PointResult{Index: pt.Index, Values: values, ElapsedNs: 1})
	}
	return out
}

type built struct {
	ds  *core.Dataset
	err error
}

// startBuild launches a fleet build of the design in the background.
func startBuild(c *Coordinator, design *doe.Design) chan built {
	done := make(chan built, 1)
	go func() {
		ds, err := c.RunDesign(context.Background(), testSpec(), design)
		done <- built{ds, err}
	}()
	return done
}

// leaseOrPoll leases with a deadline, tolerating the empty interval before
// the background RunDesign enqueues its job.
func leaseOrPoll(t *testing.T, c *Coordinator, worker, epoch string) LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		lr := c.Lease(LeaseRequest{Worker: worker, Epoch: epoch})
		if lr.Lease != nil || lr.Gone || lr.Draining {
			return lr
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// drainJob plays worker id by hand — lease, run, report — until the
// background build resolves.
func drainJob(t *testing.T, c *Coordinator, id, epoch string, done <-chan built) built {
	t.Helper()
	deadline := time.After(20 * time.Second)
	for {
		select {
		case b := <-done:
			return b
		case <-deadline:
			t.Fatal("build never finished")
		default:
		}
		lr := c.Lease(LeaseRequest{Worker: id, Epoch: epoch})
		if lr.Gone || lr.Draining {
			t.Fatalf("worker %s rejected mid-drain: %+v", id, lr)
		}
		if lr.Lease == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		if rr := c.Results(ResultsRequest{Worker: id, Epoch: epoch, Lease: lr.Lease.ID, Results: runPoints(t, lr.Lease)}); !rr.OK {
			t.Fatalf("results rejected: %+v", rr)
		}
	}
}

// TestRunDesignRequiresWorkers: a fleet build with no registered workers
// is rejected up front with the typed sentinel.
func TestRunDesignRequiresWorkers(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Shutdown()
	if _, err := c.RunDesign(context.Background(), testSpec(), testDesign(t)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
}

// TestManualFleetCompletes drives one worker by hand through the typed
// protocol and checks the assembled dataset against a local run.
func TestManualFleetCompletes(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Shutdown()
	reg, err := c.Register(RegisterRequest{Worker: "a", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	design := testDesign(t)
	b := drainJob(t, c, "a", reg.Epoch, startBuild(c, design))
	if b.err != nil {
		t.Fatal(b.err)
	}
	sameY(t, b.ds, localDataset(t, design))
	if b.ds.SimWork <= 0 {
		t.Fatalf("SimWork not aggregated: %v", b.ds.SimWork)
	}
	views := c.Workers()
	if len(views) != 1 || views[0].CompletedPoints != design.N() || views[0].State != workerActive {
		t.Fatalf("worker view after build: %+v", views)
	}
}

// TestSplitBrainReregistration: re-registering a worker ID supersedes the
// old incarnation — its epoch answers Gone everywhere, its leased points
// are re-enqueued, and the build completes through the new epoch only.
func TestSplitBrainReregistration(t *testing.T) {
	cfg := fastConfig()
	cfg.HeartbeatTimeout = time.Minute // isolate: only re-registration may revoke
	c := NewCoordinator(cfg)
	defer c.Shutdown()
	reg1, err := c.Register(RegisterRequest{Worker: "a"})
	if err != nil {
		t.Fatal(err)
	}
	design := testDesign(t)
	done := startBuild(c, design)

	// The old incarnation takes a lease, then its twin re-registers.
	lr1 := leaseOrPoll(t, c, "a", reg1.Epoch)
	reg2, err := c.Register(RegisterRequest{Worker: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Epoch == reg1.Epoch {
		t.Fatal("re-registration must mint a fresh epoch")
	}
	// Every old-epoch call answers Gone; its results are never recorded.
	if hb := c.Heartbeat(HeartbeatRequest{Worker: "a", Epoch: reg1.Epoch}); !hb.Gone {
		t.Fatalf("stale heartbeat: %+v", hb)
	}
	if rr := c.Results(ResultsRequest{Worker: "a", Epoch: reg1.Epoch, Lease: lr1.Lease.ID, Results: runPoints(t, lr1.Lease)}); !rr.Gone {
		t.Fatalf("stale results accepted: %+v", rr)
	}
	// The new epoch alone completes the whole design — proof the old
	// lease's points were re-enqueued.
	b := drainJob(t, c, "a", reg2.Epoch, done)
	if b.err != nil {
		t.Fatal(b.err)
	}
	sameY(t, b.ds, localDataset(t, design))
	if b.ds.Retries == 0 {
		t.Fatal("re-enqueued grants must surface in Dataset.Retries")
	}
}

// TestCircuitBreakerEviction: consecutive failed points evict a worker
// (its epoch answers Gone), the failed points retry elsewhere, and the
// evicted worker may rejoin with a fresh epoch.
func TestCircuitBreakerEviction(t *testing.T) {
	cfg := fastConfig()
	cfg.HeartbeatTimeout = time.Minute
	cfg.MaxWorkerFailures = 2
	cfg.MaxPointAttempts = 4
	cfg.LeasePoints = 1
	c := NewCoordinator(cfg)
	defer c.Shutdown()
	mreg := obs.NewRegistry()
	c.RegisterMetrics(mreg, "test_cluster")

	bad, err := c.Register(RegisterRequest{Worker: "bad"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := c.Register(RegisterRequest{Worker: "good"})
	if err != nil {
		t.Fatal(err)
	}
	design := testDesign(t)
	done := startBuild(c, design)

	// Two consecutive transient failures trip the breaker.
	for i := 0; i < 2; i++ {
		lr := leaseOrPoll(t, c, "bad", bad.Epoch)
		c.Results(ResultsRequest{Worker: "bad", Epoch: bad.Epoch, Lease: lr.Lease.ID, Results: []PointResult{
			{Index: lr.Lease.Points[0].Index, Error: "injected transient", Transient: true},
		}})
	}
	if lr := c.Lease(LeaseRequest{Worker: "bad", Epoch: bad.Epoch}); !lr.Gone {
		t.Fatalf("evicted worker still leasing: %+v", lr)
	}
	views := c.Workers()
	var badView *WorkerView
	for i := range views {
		if views[i].ID == "bad" {
			badView = &views[i]
		}
	}
	if badView == nil || badView.State != workerEvicted {
		t.Fatalf("bad worker view: %+v", badView)
	}
	if !strings.Contains(string(mreg.Render()), `test_cluster_worker_evicted_total{worker="bad"} 1`) {
		t.Fatalf("eviction metric missing:\n%s", mreg.Render())
	}

	// The good worker finishes the build, failed points included.
	b := drainJob(t, c, "good", good.Epoch, done)
	if b.err != nil {
		t.Fatal(b.err)
	}
	sameY(t, b.ds, localDataset(t, design))
	if b.ds.Retries == 0 {
		t.Fatal("re-enqueued grants must surface in Dataset.Retries")
	}
	// Rejoining resets the breaker with a fresh epoch.
	re, err := c.Register(RegisterRequest{Worker: "bad"})
	if err != nil || re.Epoch == bad.Epoch || re.Draining {
		t.Fatalf("rejoin failed: %+v, %v", re, err)
	}
}

// TestPermanentFailureFailsBuild: a non-transient point failure fails the
// whole build instead of retrying forever.
func TestPermanentFailureFailsBuild(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Shutdown()
	reg, _ := c.Register(RegisterRequest{Worker: "a"})
	done := startBuild(c, testDesign(t))
	lr := leaseOrPoll(t, c, "a", reg.Epoch)
	c.Results(ResultsRequest{Worker: "a", Epoch: reg.Epoch, Lease: lr.Lease.ID, Results: []PointResult{
		{Index: lr.Lease.Points[0].Index, Error: "boom", Transient: false},
	}})
	select {
	case b := <-done:
		if b.err == nil || !strings.Contains(b.err.Error(), "boom") {
			t.Fatalf("got %v, want the permanent point failure", b.err)
		}
		if b.ds.Y != nil {
			t.Fatal("failed build must not carry response columns")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("build never failed")
	}
}

// TestPointBudgetExhaustion: a point repeatedly lost with the fleet-level
// retry budget spent fails the build with the exhausting cause in the
// chain.
func TestPointBudgetExhaustion(t *testing.T) {
	cfg := fastConfig()
	cfg.HeartbeatTimeout = time.Minute
	cfg.MaxPointAttempts = 2
	cfg.MaxWorkerFailures = 100 // keep the breaker out of this test
	cfg.LeasePoints = 1
	c := NewCoordinator(cfg)
	defer c.Shutdown()
	reg, _ := c.Register(RegisterRequest{Worker: "a"})
	done := startBuild(c, testDesign(t))
	// Fail every granted point transiently; requeued points rejoin the back
	// of the queue, so after one full cycle a second grant of some point
	// exhausts its 2-grant budget and fails the build.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case b := <-done:
			if b.err == nil || !strings.Contains(b.err.Error(), "failed after 2 grants") {
				t.Fatalf("got %v, want grant-budget exhaustion", b.err)
			}
			return
		case <-deadline:
			t.Fatal("build never failed")
		default:
		}
		lr := c.Lease(LeaseRequest{Worker: "a", Epoch: reg.Epoch})
		if lr.Lease == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		c.Results(ResultsRequest{Worker: "a", Epoch: reg.Epoch, Lease: lr.Lease.ID, Results: []PointResult{
			{Index: lr.Lease.Points[0].Index, Error: "flaky", Transient: true},
		}})
	}
}

// TestShutdownDrainsBuildsAndWorkers: Shutdown fails in-flight builds with
// ErrDraining, answers Draining to the fleet, and refuses new work.
func TestShutdownDrainsBuildsAndWorkers(t *testing.T) {
	c := NewCoordinator(fastConfig())
	reg, _ := c.Register(RegisterRequest{Worker: "a"})
	design := testDesign(t)
	done := startBuild(c, design)
	leaseOrPoll(t, c, "a", reg.Epoch) // an outstanding lease to cancel
	c.Shutdown()
	select {
	case b := <-done:
		if !errors.Is(b.err, ErrDraining) {
			t.Fatalf("got %v, want ErrDraining", b.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("build survived shutdown")
	}
	if lr := c.Lease(LeaseRequest{Worker: "a", Epoch: reg.Epoch}); !lr.Draining {
		t.Fatalf("lease after shutdown: %+v", lr)
	}
	if rr, err := c.Register(RegisterRequest{Worker: "b"}); err != nil || !rr.Draining {
		t.Fatalf("register after shutdown: %+v, %v", rr, err)
	}
	if _, err := c.RunDesign(context.Background(), testSpec(), design); !errors.Is(err, ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
	c.Shutdown() // idempotent
}

// TestRunDesignContextCancel: cancelling the build context aborts the
// build with the cancellation cause, local-run style.
func TestRunDesignContextCancel(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Shutdown()
	c.Register(RegisterRequest{Worker: "a"})
	design := testDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.RunDesign(ctx, testSpec(), design)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled in the chain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("build survived cancellation")
	}
}

// TestWorkerLostErrorIsTransient: the whole-worker-loss error slots into
// core's typed-error semantics as retryable.
func TestWorkerLostErrorIsTransient(t *testing.T) {
	err := &WorkerLostError{Worker: "w", Reason: "heartbeat timeout"}
	if !core.IsTransient(err) {
		t.Fatal("WorkerLostError must be transient")
	}
	if !strings.Contains(err.Error(), "heartbeat timeout") {
		t.Fatalf("error text lacks the reason: %v", err)
	}
}
