package cluster

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// lockedBuffer is a goroutine-safe log sink for asserting on log lines.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func testLogger(buf *lockedBuffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// startWorker runs a fleet worker against the coordinator URL; the
// returned channel carries Run's result.
func startWorker(t *testing.T, url, id string, factory ProblemFactory, lg *slog.Logger) (*Worker, chan error) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: url,
		ID:          id,
		Problem:     factory,
		Concurrency: 2,
		Heartbeat:   10 * time.Millisecond,
		Poll:        2 * time.Millisecond,
		Log:         lg,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(context.Background()) }()
	return w, errc
}

func waitLive(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered in time", c.LiveWorkers(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func wantRunErr(t *testing.T, errc chan error, want error, who string) {
	t.Helper()
	select {
	case err := <-errc:
		if want == nil {
			if err != nil {
				t.Fatalf("%s: Run returned %v, want nil", who, err)
			}
		} else if !errors.Is(err, want) {
			t.Fatalf("%s: Run returned %v, want %v", who, err, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: Run never returned", who)
	}
}

// checkNoLeak polls until the goroutine count returns to (near) the
// baseline, mirroring the serve shutdown leak test.
func checkNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d before\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetBuildMatchesLocal: a 3-worker httptest fleet produces a Dataset
// bit-identical to a local RunDesignContext run, then drains cleanly with
// no goroutine leak.
func TestFleetBuildMatchesLocal(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewCoordinator(fastConfig())
	srv := httptest.NewServer(c.Handler())

	ids := []string{"w-1", "w-2", "w-3"}
	var errcs []chan error
	for _, id := range ids {
		_, errc := startWorker(t, srv.URL, id, testProblem, nil)
		errcs = append(errcs, errc)
	}
	waitLive(t, c, 3)

	design := testDesign(t)
	ds, err := c.RunDesign(context.Background(), testSpec(), design)
	if err != nil {
		t.Fatal(err)
	}
	sameY(t, ds, localDataset(t, design))

	// Work actually spread: every point landed exactly once, across >1
	// worker.
	total, contributed := 0, 0
	for _, v := range c.Workers() {
		total += v.CompletedPoints
		if v.CompletedPoints > 0 {
			contributed++
		}
	}
	if total != design.N() {
		t.Fatalf("completed %d points, want %d", total, design.N())
	}
	if contributed < 2 {
		t.Fatalf("only %d workers completed points; sharding never spread", contributed)
	}

	c.Shutdown()
	for i, errc := range errcs {
		wantRunErr(t, errc, nil, ids[i])
	}
	srv.CloseClientConnections()
	srv.Close()
	checkNoLeak(t, before)
}

// TestWorkerKillChaosConverges is the chaos e2e: one of three workers is
// wired with the fault injector's Kill mode (PKill=1, so its very first
// run dies mid-lease). The coordinator declares it lost on heartbeat
// timeout, re-enqueues its leased points under a WorkerLostError, and the
// surviving workers converge to a Dataset bit-identical to the local run.
func TestWorkerKillChaosConverges(t *testing.T) {
	c := NewCoordinator(fastConfig()) // 250ms heartbeat timeout, 10ms tick
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	defer c.Shutdown()

	// The victim joins alone first, so it is guaranteed to lease (and die
	// holding) the first batch; the healthy workers join right after the
	// kill and pick up the pieces.
	inj := fault.New(fault.Config{Seed: 1, PKill: 1})
	killFactory := func(excite, horizon float64) *core.Problem {
		p := testProblem(excite, horizon)
		p.Runner = inj.Wrap(nil)
		return p
	}
	victim, errcKill := startWorker(t, srv.URL, "w-victim", killFactory, nil)
	inj.OnKill(victim.Kill)
	waitLive(t, c, 1)

	design := testDesign(t)
	done := make(chan built, 1)
	go func() {
		ds, err := c.RunDesign(context.Background(), testSpec(), design)
		done <- built{ds, err}
	}()
	wantRunErr(t, errcKill, ErrKilled, "w-victim")

	_, errc1 := startWorker(t, srv.URL, "w-ok-1", testProblem, nil)
	_, errc2 := startWorker(t, srv.URL, "w-ok-2", testProblem, nil)

	var b built
	select {
	case b = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("chaos build never converged")
	}
	ds, err := b.ds, b.err
	if err != nil {
		t.Fatal(err)
	}
	sameY(t, ds, localDataset(t, design))

	// The victim's leased points travelled through the loss path.
	if ds.Retries == 0 {
		t.Fatal("worker loss must surface as Dataset.Retries")
	}
	var victimView *WorkerView
	for _, v := range c.Workers() {
		if v.ID == "w-victim" {
			vv := v
			victimView = &vv
		}
	}
	if victimView == nil || victimView.State != workerLost {
		t.Fatalf("victim view: %+v", victimView)
	}
	if victimView.CompletedPoints != 0 {
		t.Fatalf("a killed worker reported %d completed points", victimView.CompletedPoints)
	}

	c.Shutdown()
	wantRunErr(t, errc1, nil, "w-ok-1")
	wantRunErr(t, errc2, nil, "w-ok-2")
}

// TestLeaseStealing: a worker that sits on a lease past the lease timeout
// has its points stolen and re-granted; the healthy worker finishes the
// build, and the slow worker's late results are dropped (first result
// wins) without corrupting the dataset.
func TestLeaseStealing(t *testing.T) {
	cfg := fastConfig()
	cfg.HeartbeatTimeout = time.Minute // slow ≠ dead: it keeps heartbeating
	cfg.LeaseTimeout = 50 * time.Millisecond
	cfg.Tick = 10 * time.Millisecond
	cfg.MaxPointAttempts = 3
	c := NewCoordinator(cfg)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	defer c.Shutdown()

	// The slow worker joins alone first, so it is guaranteed to hold the
	// first lease (blocked) when the healthy worker joins.
	release := make(chan struct{})
	slowFactory := func(excite, horizon float64) *core.Problem {
		p := testProblem(excite, horizon)
		inner := p.Engine
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			<-release
			return inner(d, cfg)
		}
		return p
	}
	_, errcSlow := startWorker(t, srv.URL, "w-slow", slowFactory, nil)
	waitLive(t, c, 1)

	design := testDesign(t)
	done := make(chan built, 1)
	go func() {
		ds, err := c.RunDesign(context.Background(), testSpec(), design)
		done <- built{ds, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		views := c.Workers()
		if len(views) == 1 && views[0].InflightLeases > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow worker never took a lease")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, errcFast := startWorker(t, srv.URL, "w-fast", testProblem, nil)

	var b built
	select {
	case b = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("build never finished despite the steal")
	}
	if b.err != nil {
		t.Fatal(b.err)
	}
	sameY(t, b.ds, localDataset(t, design))

	stolen := 0
	for _, v := range c.Workers() {
		stolen += v.StolenLeases
	}
	if stolen == 0 {
		t.Fatal("slow lease was never stolen")
	}

	// Unblock the slow worker; its late results must be absorbed quietly.
	close(release)
	c.Shutdown()
	wantRunErr(t, errcSlow, nil, "w-slow")
	wantRunErr(t, errcFast, nil, "w-fast")
}

// TestShutdownCancelsOutstandingLeases: draining the coordinator mid-lease
// fails the build with ErrDraining, logs the cancellation reason per
// lease, deregisters the worker cleanly, and leaks nothing.
func TestShutdownCancelsOutstandingLeases(t *testing.T) {
	before := runtime.NumGoroutine()
	var coordLog, workerLog lockedBuffer
	cfg := fastConfig()
	cfg.HeartbeatTimeout = time.Minute
	cfg.Log = testLogger(&coordLog)
	c := NewCoordinator(cfg)
	srv := httptest.NewServer(c.Handler())

	release := make(chan struct{})
	blockingFactory := func(excite, horizon float64) *core.Problem {
		p := testProblem(excite, horizon)
		inner := p.Engine
		p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
			<-release
			return inner(d, cfg)
		}
		return p
	}
	_, errc := startWorker(t, srv.URL, "w-blocked", blockingFactory, testLogger(&workerLog))
	waitLive(t, c, 1)

	design := testDesign(t)
	buildErr := make(chan error, 1)
	go func() {
		_, err := c.RunDesign(context.Background(), testSpec(), design)
		buildErr <- err
	}()

	// Wait for the worker to hold a lease, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for {
		views := c.Workers()
		if len(views) == 1 && views[0].InflightLeases > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never took a lease")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Shutdown()

	select {
	case err := <-buildErr:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("build returned %v, want ErrDraining", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("build survived shutdown")
	}
	close(release) // let the blocked engine finish; its upload is a no-op
	wantRunErr(t, errc, nil, "w-blocked")

	logs := coordLog.String()
	if !strings.Contains(logs, "lease canceled") || !strings.Contains(logs, "coordinator draining") {
		t.Fatalf("coordinator log lacks the cancellation reason:\n%s", logs)
	}
	if !strings.Contains(workerLog.String(), "deregistering") {
		t.Fatalf("worker log lacks the drain goodbye:\n%s", workerLog.String())
	}

	srv.CloseClientConnections()
	srv.Close()
	checkNoLeak(t, before)
}

// TestLeaseCarriesTrace: the job's trace ID rides every lease, so worker
// log lines correlate with the coordinator's.
func TestLeaseCarriesTrace(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Shutdown()
	reg, _ := c.Register(RegisterRequest{Worker: "a"})
	spec := testSpec()
	spec.Trace = "trace-xyz"
	design := testDesign(t)
	done := make(chan built, 1)
	go func() {
		ds, err := c.RunDesign(context.Background(), spec, design)
		done <- built{ds, err}
	}()
	lr := leaseOrPoll(t, c, "a", reg.Epoch)
	if lr.Lease.Trace != "trace-xyz" {
		t.Fatalf("lease trace %q, want trace-xyz", lr.Lease.Trace)
	}
	if lr.Lease.Excite != spec.Excite || lr.Lease.Horizon != spec.Horizon {
		t.Fatalf("lease problem params %v/%v diverge from spec", lr.Lease.Excite, lr.Lease.Horizon)
	}
	if rr := c.Results(ResultsRequest{Worker: "a", Epoch: reg.Epoch, Lease: lr.Lease.ID, Results: runPoints(t, lr.Lease)}); !rr.OK {
		t.Fatalf("results rejected: %+v", rr)
	}
	b := drainJob(t, c, "a", reg.Epoch, done)
	if b.err != nil {
		t.Fatal(b.err)
	}
}
