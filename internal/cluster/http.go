package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/apiclient"
)

// Handler mounts the work protocol on a plain mux — what tests and
// cmd/bench use to stand up a coordinator without the full serve stack.
// internal/serve mounts the same methods through its own instrumented
// endpoint table instead, so production traffic gets the uniform
// envelope, metrics and access logs.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		resp, err := c.Register(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid_request", err)
			return
		}
		encodeBody(w, resp)
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		encodeBody(w, c.Heartbeat(req))
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		encodeBody(w, c.Lease(req))
	})
	mux.HandleFunc("POST "+PathResults, func(w http.ResponseWriter, r *http.Request) {
		var req ResultsRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		encodeBody(w, c.Results(req))
	})
	mux.HandleFunc("POST "+PathDeregister, func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		encodeBody(w, c.Deregister(req))
	})
	mux.HandleFunc("GET "+PathWorkers, func(w http.ResponseWriter, r *http.Request) {
		encodeBody(w, WorkersResponse{Workers: c.Workers()})
	})
	mux.HandleFunc("GET "+PathCache, func(w http.ResponseWriter, r *http.Request) {
		encodeBody(w, c.CacheState())
	})
	return mux
}

// decodeBody strictly decodes a protocol request: unknown fields are
// rejected so a newer client's message never silently loses meaning on an
// older server.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "invalid_request", fmt.Errorf("malformed JSON body: %w", err))
		return false
	}
	return true
}

// checkProto rejects requests speaking the wrong protocol generation with
// the typed proto_mismatch code.
func checkProto(w http.ResponseWriter, v Versioned) bool {
	if err := CheckProto(v); err != nil {
		httpError(w, http.StatusBadRequest, "proto_mismatch", err)
		return false
	}
	return true
}

func encodeBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code})
}

// Client dials a coordinator's work protocol — the worker side of the
// wire, built on the shared apiclient (typed envelopes, transport retry,
// X-Request-ID propagation). Zero value is unusable; set Base (and
// optionally HTTP). Every request is stamped with this build's
// ProtoVersion.
type Client struct {
	// Base is the coordinator's base URL (e.g. "http://host:8080").
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client

	once sync.Once
	api  *apiclient.Client
}

func (cl *Client) client() *apiclient.Client {
	cl.once.Do(func() {
		cl.api = apiclient.New(cl.Base, apiclient.Options{HTTP: cl.HTTP})
	})
	return cl.api
}

// Register announces the worker.
func (cl *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	req.ProtoVersion = ProtoVersion
	var out RegisterResponse
	err := cl.client().Post(ctx, PathRegister, req, &out)
	return out, err
}

// Heartbeat refreshes the worker's liveness.
func (cl *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	req.ProtoVersion = ProtoVersion
	var out HeartbeatResponse
	err := cl.client().Post(ctx, PathHeartbeat, req, &out)
	return out, err
}

// Lease pulls the next batch of work.
func (cl *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	req.ProtoVersion = ProtoVersion
	var out LeaseResponse
	err := cl.client().Post(ctx, PathLease, req, &out)
	return out, err
}

// Results streams a finished lease back.
func (cl *Client) Results(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	req.ProtoVersion = ProtoVersion
	var out ResultsResponse
	err := cl.client().Post(ctx, PathResults, req, &out)
	return out, err
}

// Deregister removes the worker cleanly.
func (cl *Client) Deregister(ctx context.Context, req DeregisterRequest) (DeregisterResponse, error) {
	req.ProtoVersion = ProtoVersion
	var out DeregisterResponse
	err := cl.client().Post(ctx, PathDeregister, req, &out)
	return out, err
}

// CacheState reads the fleet cache-tier snapshot.
func (cl *Client) CacheState(ctx context.Context) (CacheStateResponse, error) {
	var out CacheStateResponse
	err := cl.client().Get(ctx, PathCache, &out)
	return out, err
}
