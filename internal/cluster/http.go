package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler mounts the work protocol on a plain mux — what tests and
// cmd/bench use to stand up a coordinator without the full serve stack.
// internal/serve mounts the same methods through its own instrumented
// endpoint table instead, so production traffic gets the uniform
// envelope, metrics and access logs.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := c.Register(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		encodeBody(w, resp)
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		encodeBody(w, c.Heartbeat(req))
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		encodeBody(w, c.Lease(req))
	})
	mux.HandleFunc("POST "+PathResults, func(w http.ResponseWriter, r *http.Request) {
		var req ResultsRequest
		if !decodeBody(w, r, &req) {
			return
		}
		encodeBody(w, c.Results(req))
	})
	mux.HandleFunc("POST "+PathDeregister, func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !decodeBody(w, r, &req) {
			return
		}
		encodeBody(w, c.Deregister(req))
	})
	mux.HandleFunc("GET "+PathWorkers, func(w http.ResponseWriter, r *http.Request) {
		encodeBody(w, WorkersResponse{Workers: c.Workers()})
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
		return false
	}
	return true
}

func encodeBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": "invalid_request"})
}

// Client dials a coordinator's work protocol — the worker side of the
// wire. Zero value is unusable; set Base (and optionally HTTP).
type Client struct {
	// Base is the coordinator's base URL (e.g. "http://host:8080").
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (cl *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(cl.Base, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := cl.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	res, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 4<<10))
		return fmt.Errorf("cluster: %s answered %d: %s", path, res.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(io.LimitReader(res.Body, 64<<20)).Decode(out)
}

// Register announces the worker.
func (cl *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var out RegisterResponse
	err := cl.post(ctx, PathRegister, req, &out)
	return out, err
}

// Heartbeat refreshes the worker's liveness.
func (cl *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var out HeartbeatResponse
	err := cl.post(ctx, PathHeartbeat, req, &out)
	return out, err
}

// Lease pulls the next batch of work.
func (cl *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var out LeaseResponse
	err := cl.post(ctx, PathLease, req, &out)
	return out, err
}

// Results streams a finished lease back.
func (cl *Client) Results(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var out ResultsResponse
	err := cl.post(ctx, PathResults, req, &out)
	return out, err
}

// Deregister removes the worker cleanly.
func (cl *Client) Deregister(ctx context.Context, req DeregisterRequest) (DeregisterResponse, error) {
	var out DeregisterResponse
	err := cl.post(ctx, PathDeregister, req, &out)
	return out, err
}
