package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAssignShardsDeterministic: the rendezvous assignment is a pure
// function of the member set — input order must not matter, and every slot
// must be owned.
func TestAssignShardsDeterministic(t *testing.T) {
	a := assignShards([]string{"w-a", "w-b", "w-c"}, DefaultShards)
	b := assignShards([]string{"w-c", "w-a", "w-b"}, DefaultShards)
	if !slicesEqual(a, b) {
		t.Fatal("assignment depends on member order")
	}
	counts := map[string]int{}
	for slot, id := range a {
		if id != "w-a" && id != "w-b" && id != "w-c" {
			t.Fatalf("slot %d owned by unknown %q", slot, id)
		}
		counts[id]++
	}
	// Rendezvous over 64 slots must give every member a share; a member
	// with zero slots would mean the hash degenerated.
	for id, n := range counts {
		if n == 0 {
			t.Fatalf("member %s owns no slots", id)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own slots: %v", len(counts), counts)
	}
}

// TestAssignShardsMinimalDisruption: a join may only capture slots (never
// shuffle ownership among the incumbents), and a leave may only move the
// leaver's slots.
func TestAssignShardsMinimalDisruption(t *testing.T) {
	base := assignShards([]string{"w-a", "w-b", "w-c"}, DefaultShards)
	joined := assignShards([]string{"w-a", "w-b", "w-c", "w-d"}, DefaultShards)
	for slot := range base {
		if joined[slot] != base[slot] && joined[slot] != "w-d" {
			t.Fatalf("join moved slot %d from %s to %s (not the joiner)",
				slot, base[slot], joined[slot])
		}
	}
	left := assignShards([]string{"w-a", "w-b"}, DefaultShards)
	for slot := range base {
		if base[slot] != "w-c" && left[slot] != base[slot] {
			t.Fatalf("leave of w-c moved slot %d from %s to %s",
				slot, base[slot], left[slot])
		}
	}
}

// TestShardOf: stable, in-range, and spreading.
func TestShardOf(t *testing.T) {
	key := strings.Repeat("ab", 32)
	s := ShardOf(key, DefaultShards)
	if s != ShardOf(key, DefaultShards) {
		t.Fatal("ShardOf is not stable")
	}
	if s < 0 || s >= DefaultShards {
		t.Fatalf("slot %d out of range", s)
	}
	if ShardOf(key, 0) != 0 {
		t.Fatal("zero shards must collapse to slot 0")
	}
	seen := map[int]bool{}
	for _, k := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"} {
		seen[ShardOf(k, DefaultShards)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 keys landed on %d slot(s); the hash degenerated", len(seen))
	}
}

// TestShardMapOwner: nil and empty maps answer unowned; a populated map
// resolves both the ID and the peer URL.
func TestShardMapOwner(t *testing.T) {
	var nilMap *ShardMap
	if id, url := nilMap.Owner("k"); id != "" || url != "" {
		t.Fatalf("nil map owner: %q %q", id, url)
	}
	if id, _ := (&ShardMap{}).Owner("k"); id != "" {
		t.Fatalf("empty map owner: %q", id)
	}
	m := &ShardMap{
		Generation: 1,
		Shards:     1,
		Owners:     []string{"w-b"},
		Peers:      map[string]string{"w-b": "http://b"},
	}
	if id, url := m.Owner("anything"); id != "w-b" || url != "http://b" {
		t.Fatalf("owner: %q %q", id, url)
	}
}

// TestValidCacheKey gates the wire: only full 64-char lowercase-hex
// fingerprints may reach the cache (the disk tier uses keys as filenames).
func TestValidCacheKey(t *testing.T) {
	if !validCacheKey(strings.Repeat("0123456789abcdef", 4)) {
		t.Fatal("a canonical fingerprint was rejected")
	}
	for _, bad := range []string{
		"",
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
		strings.Repeat("A", 64),
		"../" + strings.Repeat("a", 61),
		strings.Repeat("a", 60) + ".bad",
	} {
		if validCacheKey(bad) {
			t.Fatalf("malformed key %q accepted", bad)
		}
	}
}

// TestCheckProto pins the typed version gate: the current version passes,
// anything else answers the structured mismatch error.
func TestCheckProto(t *testing.T) {
	ok := RegisterRequest{ProtoHeader: ProtoHeader{ProtoVersion: ProtoVersion}}
	if err := CheckProto(ok); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	old := HeartbeatRequest{ProtoHeader: ProtoHeader{ProtoVersion: 1}}
	err := CheckProto(old)
	var pm *ProtoMismatchError
	if !errors.As(err, &pm) {
		t.Fatalf("got %T (%v), want *ProtoMismatchError", err, err)
	}
	if pm.Got != 1 || pm.Want != ProtoVersion {
		t.Fatalf("mismatch fields: %+v", pm)
	}
	if !strings.Contains(err.Error(), "1") || !strings.Contains(err.Error(), "2") {
		t.Fatalf("mismatch text lacks the versions: %v", err)
	}
}

// TestHTTPProtoAndFieldGates drives the wire-level contract on the plain
// coordinator handler: a wrong proto_version answers 400/proto_mismatch
// before any state changes, and an unknown field answers 400 under strict
// decoding. A well-formed v2 register succeeds.
func TestHTTPProtoAndFieldGates(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Shutdown()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(body string) (int, map[string]string) {
		t.Helper()
		resp, err := http.Post(srv.URL+PathRegister, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env map[string]string
		json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env
	}

	status, env := post(`{"proto_version":1,"worker":"stale"}`)
	if status != http.StatusBadRequest || env["code"] != "proto_mismatch" {
		t.Fatalf("v1 register: %d %v, want 400 proto_mismatch", status, env)
	}
	if len(c.Workers()) != 0 {
		t.Fatal("a rejected register mutated fleet state")
	}

	status, env = post(`{"proto_version":2,"worker":"typo","sharld_count":64}`)
	if status != http.StatusBadRequest || env["code"] != "invalid_request" {
		t.Fatalf("unknown field: %d %v, want 400 invalid_request", status, env)
	}

	status, _ = post(`{"proto_version":2,"worker":"good"}`)
	if status != http.StatusOK {
		t.Fatalf("well-formed register: %d, want 200", status)
	}
}

// TestShardMapLifecycle walks the ownership protocol end to end through
// direct coordinator calls: registrations bump the generation, cache-less
// workers never enter the ring, lease-steal marks the holder suspect (its
// ranges move), a successful upload clears the suspicion, and a clean
// deregister both reassigns the ranges and keeps the fleet counters
// monotonic via the departed accumulator.
func TestShardMapLifecycle(t *testing.T) {
	cfg := fastConfig()
	cfg.HeartbeatTimeout = time.Minute // only steals and goodbyes move the map here
	cfg.LeaseTimeout = 40 * time.Millisecond
	cfg.Tick = 10 * time.Millisecond
	c := NewCoordinator(cfg)
	defer c.Shutdown()

	regA, err := c.Register(RegisterRequest{Worker: "a", PeerURL: "http://a"})
	if err != nil {
		t.Fatal(err)
	}
	if regA.Map == nil || regA.Map.Generation != 1 {
		t.Fatalf("first peer-capable register must publish generation 1: %+v", regA.Map)
	}
	for slot, id := range regA.Map.Owners {
		if id != "a" {
			t.Fatalf("slot %d owned by %q with one member", slot, id)
		}
	}

	// A cache-less worker joins the fleet but not the ring.
	if reg, _ := c.Register(RegisterRequest{Worker: "np"}); reg.Map.Generation != 1 {
		t.Fatalf("cache-less register bumped the map to %d", reg.Map.Generation)
	}

	regB, err := c.Register(RegisterRequest{Worker: "b", PeerURL: "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	if regB.Map.Generation != 2 {
		t.Fatalf("second member: generation %d, want 2", regB.Map.Generation)
	}
	owners := map[string]bool{}
	for _, id := range regB.Map.Owners {
		owners[id] = true
	}
	if !owners["a"] || !owners["b"] || len(owners) != 2 {
		t.Fatalf("two-member ring owners: %v", owners)
	}

	// Heartbeats piggyback the map only when the worker is behind, and the
	// reported counters land in the fleet totals.
	hb := c.Heartbeat(HeartbeatRequest{Worker: "a", Epoch: regA.Epoch, Generation: 2,
		Cache: &CacheStats{Misses: 5, Hits: 2}})
	if hb.Map != nil {
		t.Fatalf("up-to-date heartbeat still carried a map: %+v", hb.Map)
	}
	if hb = c.Heartbeat(HeartbeatRequest{Worker: "a", Epoch: regA.Epoch, Generation: 1}); hb.Map == nil || hb.Map.Generation != 2 {
		t.Fatalf("stale heartbeat must carry the newer map: %+v", hb.Map)
	}
	if tot := c.CacheState().Totals; tot.Misses != 5 || tot.Hits != 2 {
		t.Fatalf("fleet totals: %+v", tot)
	}

	// Sitting on a lease past the timeout marks the holder suspect and
	// moves its ranges to the survivor.
	design := testDesign(t)
	done := startBuild(c, design)
	lr := leaseOrPoll(t, c, "a", regA.Epoch)
	deadline := time.Now().Add(5 * time.Second)
	var st CacheStateResponse
	for {
		st = c.CacheState()
		var a *CacheWorkerView
		for i := range st.Workers {
			if st.Workers[i].ID == "a" {
				a = &st.Workers[i]
			}
		}
		if a != nil && a.Suspect {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stolen lease never marked the holder suspect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Map.Generation != 3 {
		t.Fatalf("suspicion must bump the map: generation %d, want 3", st.Map.Generation)
	}
	for slot, id := range st.Map.Owners {
		if id != "b" {
			t.Fatalf("slot %d still owned by %q while a is suspect", slot, id)
		}
	}

	// A successful upload proves the worker responsive: suspicion lifts and
	// its ranges come back.
	if rr := c.Results(ResultsRequest{Worker: "a", Epoch: regA.Epoch, Lease: lr.Lease.ID,
		Results: runPoints(t, lr.Lease), Cache: &CacheStats{Misses: 9, Hits: 4}}); !rr.OK {
		t.Fatalf("results rejected: %+v", rr)
	}
	st = c.CacheState()
	if st.Map.Generation != 4 {
		t.Fatalf("cleared suspicion must bump the map: generation %d, want 4", st.Map.Generation)
	}
	owners = map[string]bool{}
	for _, id := range st.Map.Owners {
		owners[id] = true
	}
	if !owners["a"] || !owners["b"] {
		t.Fatalf("ring after recovery: %v", owners)
	}

	// Finish the build through b, then say goodbye: b's ranges move to a
	// and its final counters stay in the totals via the departed
	// accumulator.
	if b := drainJob(t, c, "b", regB.Epoch, done); b.err != nil {
		t.Fatal(b.err)
	}
	before := c.CacheState().Totals
	c.Deregister(DeregisterRequest{Worker: "b", Epoch: regB.Epoch})
	st = c.CacheState()
	if st.Map.Generation != 5 {
		t.Fatalf("deregister must bump the map: generation %d, want 5", st.Map.Generation)
	}
	for slot, id := range st.Map.Owners {
		if id != "a" {
			t.Fatalf("slot %d owned by %q after b left", slot, id)
		}
	}
	if st.Totals.Misses < before.Misses || st.Totals.Hits < before.Hits {
		t.Fatalf("fleet counters dipped across a clean goodbye: %+v -> %+v", before, st.Totals)
	}
}
