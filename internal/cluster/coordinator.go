package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/obs"
)

// Config tunes the coordinator's failure detectors and lease shape. The
// zero value gets production defaults; tests shrink the timeouts.
type Config struct {
	// HeartbeatInterval is advertised to workers at registration
	// (default 2s).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a silent worker lost and re-enqueues its
	// leased points (default 3× HeartbeatInterval).
	HeartbeatTimeout time.Duration
	// LeaseTimeout makes a slow lease eligible for work-stealing: its
	// unfinished points are re-enqueued for other workers while the
	// original holder may still answer — the first result per point wins
	// (default 60s).
	LeaseTimeout time.Duration
	// LeasePoints caps the design points per lease (default 4).
	LeasePoints int
	// MaxPointAttempts bounds how many times one design point may be
	// granted before its build fails — the fleet-level analogue of
	// core.RetryPolicy.MaxAttempts (default 3).
	MaxPointAttempts int
	// MaxWorkerFailures is the consecutive-failed-points threshold past
	// which a worker is circuit-broken (evicted); it may rejoin by
	// re-registering (default 3).
	MaxWorkerFailures int
	// PollInterval is the idle lease-poll interval advertised to workers
	// (default 200ms).
	PollInterval time.Duration
	// Shards is the cache shard-map slot count (default DefaultShards).
	Shards int
	// Tick is the failure-detector sweep cadence (default a quarter of the
	// smallest timeout, clamped to [5ms, 1s]).
	Tick time.Duration
	// Log receives fleet lifecycle lines; nil discards them.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.HeartbeatInterval
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 60 * time.Second
	}
	if c.LeasePoints <= 0 {
		c.LeasePoints = 4
	}
	if c.MaxPointAttempts <= 0 {
		c.MaxPointAttempts = 3
	}
	if c.MaxWorkerFailures <= 0 {
		c.MaxWorkerFailures = 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.Tick <= 0 {
		c.Tick = min(c.HeartbeatTimeout, c.LeaseTimeout) / 4
		if c.Tick < 5*time.Millisecond {
			c.Tick = 5 * time.Millisecond
		}
		if c.Tick > time.Second {
			c.Tick = time.Second
		}
	}
	if c.Log == nil {
		c.Log = obs.Nop()
	}
	return c
}

// Worker lifecycle states reported by WorkerView.State.
const (
	workerActive  = "active"
	workerLost    = "lost"
	workerEvicted = "evicted"
)

// workerState is the coordinator's book on one fleet member. Guarded by
// the coordinator mutex.
type workerState struct {
	id       string
	epoch    string
	state    string
	capacity int
	lastBeat time.Time
	leases   map[string]*lease

	// peerURL is the worker's peer-cache base URL; "" means it does not
	// participate in the sharded cache tier.
	peerURL string
	// suspect marks a worker whose lease was stolen: probably slow or
	// unreachable, so it is excluded from the shard ring (peers fetching
	// from it would stall out) until its next successful results upload
	// or re-registration proves it responsive again.
	suspect bool
	// cache is the latest cumulative counter snapshot the worker reported.
	cache CacheStats

	// Lifetime counters for the worker ID, surviving re-registration.
	completed   int
	stolen      int
	failed      int
	consecFails int
}

// lease is one outstanding batch of design points granted to a worker.
type lease struct {
	id      string
	worker  string
	job     *runJob
	points  []PointAssignment
	granted time.Time
	stolen  bool
}

// JobSpec identifies one fleet build and the problem its leases describe.
type JobSpec struct {
	// ID labels leases and log lines (e.g. the serve job ID).
	ID string
	// Trace is the submitting request's trace ID, propagated into every
	// lease so worker-side obs lines correlate with the coordinator's.
	Trace string
	// Excite and Horizon parameterize the worker-side ProblemFactory.
	Excite  float64
	Horizon float64
	// Responses are the dataset columns, in order.
	Responses []core.ResponseID
}

// runJob is one in-flight fleet build. Guarded by the coordinator mutex;
// done is closed exactly once, under the mutex, when the job finishes.
type runJob struct {
	spec   JobSpec
	design *doe.Design

	pending  []int // point indices awaiting a grant, FIFO
	queued   []bool
	attempts []int // grants per point (the fleet-level retry budget)
	rows     []map[core.ResponseID]float64

	remaining int
	simWork   int64 // summed worker-reported run durations, ns
	retries   int   // worker-side retry attempts
	panics    int   // worker-side recovered panics
	requeues  int   // coordinator-level re-grants (loss, steal, transient)

	finished bool
	err      error
	done     chan struct{}
	start    time.Time
}

// coordMetrics are the per-worker fleet instruments, wired by
// RegisterMetrics. All nil-safe: an unwired coordinator just skips them.
type coordMetrics struct {
	inflight  *obs.GaugeVec   // outstanding leases, by worker
	completed *obs.CounterVec // completed points, by worker
	stolen    *obs.CounterVec // stolen (timed-out) leases, by worker
	evicted   *obs.CounterVec // circuit-break evictions, by worker
	requeued  *obs.Counter    // points re-enqueued (loss, steal, transient)
}

// Coordinator owns the fleet: worker health, outstanding leases and the
// point queues of in-flight builds. All mutation happens under one mutex;
// a monitor goroutine sweeps the failure detectors.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	metrics coordMetrics

	mu        sync.Mutex
	draining  bool
	workers   map[string]*workerState
	jobs      []*runJob // submission order; finished jobs are removed
	nextEpoch int
	nextLease int
	nextJob   int

	// shardMap is the published cache shard map (nil until a peer-capable
	// worker registers); shardIDs is the sorted member set it was built
	// from, kept to detect membership changes. departed accumulates the
	// final counter snapshots of cleanly deregistered workers so fleet
	// cache totals stay monotonic across graceful churn.
	shardMap *ShardMap
	shardIDs []string
	departed CacheStats

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator starts a coordinator (and its failure-detector sweep);
// stop it with Shutdown.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.Log,
		workers: make(map[string]*workerState),
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.monitor()
	return c
}

// RegisterMetrics adds the per-worker fleet instruments to reg under the
// given prefix. Call once, before workers register.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+"_workers", "Live (active) workers registered with the coordinator.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.liveWorkersLocked())
		})
	c.metrics = coordMetrics{
		inflight:  reg.GaugeVec(prefix+"_worker_inflight_leases", "Outstanding work leases, by worker.", "worker"),
		completed: reg.CounterVec(prefix+"_worker_completed_points_total", "Design points completed, by worker.", "worker"),
		stolen:    reg.CounterVec(prefix+"_worker_stolen_leases_total", "Leases stolen after the lease timeout, by worker.", "worker"),
		evicted:   reg.CounterVec(prefix+"_worker_evicted_total", "Circuit-break evictions after consecutive failures, by worker.", "worker"),
		requeued:  reg.Counter(prefix+"_points_requeued_total", "Design points re-enqueued after worker loss, lease theft or transient failures."),
	}
	// Fleet cache-tier counters: sums over every worker's latest reported
	// snapshot plus cleanly departed workers. Monotonic under graceful
	// churn; a worker crash loses its deltas since the last heartbeat.
	cacheCounter := func(name, help string, get func(CacheStats) uint64) {
		reg.CounterFunc(prefix+"_cache_"+name+"_total", help, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(get(c.cacheTotalsLocked()))
		})
	}
	cacheCounter("hits", "Fleet simulations answered from a worker's local cache tiers.",
		func(s CacheStats) uint64 { return s.Hits })
	cacheCounter("misses", "Fleet simulations actually executed by an engine.",
		func(s CacheStats) uint64 { return s.Misses })
	cacheCounter("peer_fetches", "Fleet cache misses answered by the owning peer.",
		func(s CacheStats) uint64 { return s.PeerFetches })
	cacheCounter("peer_timeouts", "Peer fetches that timed out or failed, falling back to local simulation.",
		func(s CacheStats) uint64 { return s.PeerTimeouts })
	cacheCounter("peer_served", "Peer-protocol lookups answered with a cached value.",
		func(s CacheStats) uint64 { return s.PeerServed })
	cacheCounter("peer_stores", "Replicated results accepted from peers.",
		func(s CacheStats) uint64 { return s.PeerStores })
	reg.GaugeFunc(prefix+"_cache_shard_generation", "Current cache shard-map generation (0 = no map published).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.shardMap == nil {
				return 0
			}
			return float64(c.shardMap.Generation)
		})
	reg.GaugeFunc(prefix+"_cache_entries", "Fleet-wide in-memory cache entries (sum of worker snapshots).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.cacheTotalsLocked().Entries)
		})
}

func (c *Coordinator) setInflightLocked(w *workerState) {
	if c.metrics.inflight != nil {
		c.metrics.inflight.With(w.id).Set(float64(len(w.leases)))
	}
}

// rebuildShardsLocked recomputes the shard map from the current
// peer-capable membership (active, non-suspect workers with a peer URL).
// The generation is bumped only when the member set actually changed, so
// heartbeats and repeated state transitions never thrash the map.
func (c *Coordinator) rebuildShardsLocked() {
	ids := make([]string, 0, len(c.workers))
	for _, w := range c.workers {
		if w.state == workerActive && !w.suspect && w.peerURL != "" {
			ids = append(ids, w.id)
		}
	}
	sort.Strings(ids)
	if c.shardMap == nil && len(ids) == 0 {
		return // no peer-capable worker has ever joined; nothing to publish
	}
	if c.shardMap != nil && slicesEqual(ids, c.shardIDs) {
		return
	}
	gen := uint64(1)
	if c.shardMap != nil {
		gen = c.shardMap.Generation + 1
	}
	peers := make(map[string]string, len(ids))
	for _, id := range ids {
		peers[id] = c.workers[id].peerURL
	}
	c.shardIDs = ids
	c.shardMap = &ShardMap{
		Generation: gen,
		Shards:     c.cfg.Shards,
		Owners:     assignShards(ids, c.cfg.Shards),
		Peers:      peers,
	}
	c.log.Info("shard map rebuilt", "generation", gen, "members", len(ids), "shards", c.cfg.Shards)
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mapIfNewerLocked returns the published map when it is ahead of the
// generation a worker reported, nil otherwise (nothing to send).
func (c *Coordinator) mapIfNewerLocked(gen uint64) *ShardMap {
	if c.shardMap != nil && c.shardMap.Generation > gen {
		return c.shardMap
	}
	return nil
}

// cacheTotalsLocked sums the fleet's cache counters: the latest snapshot
// of every currently known worker plus the departed accumulator.
func (c *Coordinator) cacheTotalsLocked() CacheStats {
	t := c.departed
	for _, w := range c.workers {
		t.Add(w.cache)
	}
	return t
}

// CacheState snapshots the sharded cache tier for GET /v1/cluster/cache.
func (c *Coordinator) CacheState() CacheStateResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	owned := make(map[string]int)
	if c.shardMap != nil {
		for _, id := range c.shardMap.Owners {
			owned[id]++
		}
	}
	views := make([]CacheWorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		views = append(views, CacheWorkerView{
			ID:      w.id,
			State:   w.state,
			PeerURL: w.peerURL,
			Shards:  owned[w.id],
			Suspect: w.suspect,
			Cache:   w.cache,
		})
	}
	sort.Slice(views, func(i, k int) bool { return views[i].ID < views[k].ID })
	return CacheStateResponse{
		Map:     c.shardMap,
		Workers: views,
		Totals:  c.cacheTotalsLocked(),
	}
}

// Register admits (or re-admits) a worker. Re-registering a known ID
// supersedes the old incarnation: its epoch answers Gone from now on and
// its leased points are re-enqueued — the split-brain rule that keeps at
// most one incarnation authoritative.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Worker == "" {
		return RegisterResponse{}, fmt.Errorf("cluster: register needs a worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return RegisterResponse{Draining: true}, nil
	}
	w := c.workers[req.Worker]
	fresh := w == nil
	if fresh {
		w = &workerState{id: req.Worker}
		c.workers[req.Worker] = w
	} else if len(w.leases) > 0 {
		c.dropLeasesLocked(w, &WorkerLostError{Worker: w.id, Reason: "superseded by re-registration"})
	}
	c.nextEpoch++
	w.epoch = fmt.Sprintf("ep-%06d", c.nextEpoch)
	w.state = workerActive
	w.capacity = req.Capacity
	w.lastBeat = time.Now()
	w.consecFails = 0
	w.suspect = false
	w.peerURL = req.PeerURL
	w.leases = make(map[string]*lease)
	c.setInflightLocked(w)
	c.rebuildShardsLocked()
	c.log.Info("worker registered", "worker", w.id, "epoch", w.epoch, "fresh", fresh,
		"peer_url", w.peerURL)
	return RegisterResponse{
		Epoch:      w.epoch,
		HeartbeatS: c.cfg.HeartbeatInterval.Seconds(),
		PollS:      c.cfg.PollInterval.Seconds(),
		Map:        c.shardMap,
	}, nil
}

// checkLocked resolves a (worker, epoch) pair to its active state; any
// mismatch — unknown ID, superseded epoch, lost or evicted incarnation —
// answers nil, and the caller reports Gone.
func (c *Coordinator) checkLocked(worker, epoch string) *workerState {
	w := c.workers[worker]
	if w == nil || w.epoch != epoch || w.state != workerActive {
		return nil
	}
	return w
}

// Heartbeat refreshes a worker's liveness.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.checkLocked(req.Worker, req.Epoch)
	if w == nil {
		return HeartbeatResponse{Gone: true, Draining: c.draining}
	}
	w.lastBeat = time.Now()
	if req.Cache != nil {
		w.cache = *req.Cache
	}
	return HeartbeatResponse{OK: true, Draining: c.draining, Map: c.mapIfNewerLocked(req.Generation)}
}

// Lease grants the next batch of pending design points to the worker, or
// nothing when no build has work. Jobs are drained in submission order.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return LeaseResponse{Draining: true}
	}
	w := c.checkLocked(req.Worker, req.Epoch)
	if w == nil {
		return LeaseResponse{Gone: true}
	}
	w.lastBeat = time.Now()
	maxPts := c.cfg.LeasePoints
	if req.Max > 0 && req.Max < maxPts {
		maxPts = req.Max
	}
	for _, j := range c.jobs {
		if j.finished || len(j.pending) == 0 {
			continue
		}
		n := min(maxPts, len(j.pending))
		pts := make([]PointAssignment, n)
		for k := 0; k < n; k++ {
			idx := j.pending[0]
			j.pending = j.pending[1:]
			j.queued[idx] = false
			j.attempts[idx]++
			pts[k] = PointAssignment{Index: idx, Coded: j.design.Runs[idx]}
		}
		c.nextLease++
		l := &lease{
			id:      fmt.Sprintf("lease-%06d", c.nextLease),
			worker:  w.id,
			job:     j,
			points:  pts,
			granted: time.Now(),
		}
		w.leases[l.id] = l
		c.setInflightLocked(w)
		c.log.Debug("lease granted", "lease", l.id, "worker", w.id, "job", j.spec.ID, "points", n)
		resp := make([]string, len(j.spec.Responses))
		for i, id := range j.spec.Responses {
			resp[i] = string(id)
		}
		return LeaseResponse{
			Lease: &LeaseView{
				ID:        l.id,
				Job:       j.spec.ID,
				Trace:     j.spec.Trace,
				Excite:    j.spec.Excite,
				Horizon:   j.spec.Horizon,
				Responses: resp,
				Points:    pts,
			},
			// Carried on the grant so a worker never executes a lease
			// against an older map than the coordinator holds.
			Map: c.mapIfNewerLocked(req.Generation),
		}
	}
	return LeaseResponse{Map: c.mapIfNewerLocked(req.Generation)}
}

// Results records a finished lease. Results for points already filled by
// another worker (a stolen lease that raced its thief) are dropped —
// first result wins — and results for cancelled or unknown leases are
// acknowledged without effect.
func (c *Coordinator) Results(req ResultsRequest) ResultsResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.checkLocked(req.Worker, req.Epoch)
	if w == nil {
		return ResultsResponse{Gone: true, Draining: c.draining}
	}
	w.lastBeat = time.Now()
	if req.Cache != nil {
		w.cache = *req.Cache
	}
	if w.suspect {
		// A successful upload proves the worker responsive again: lift the
		// lease-steal suspicion and let it re-own shards.
		w.suspect = false
		c.rebuildShardsLocked()
	}
	l := w.leases[req.Lease]
	if l == nil {
		// The lease was cancelled (its job finished or was shut down);
		// nothing to record.
		return ResultsResponse{OK: true, Draining: c.draining}
	}
	delete(w.leases, req.Lease)
	c.setInflightLocked(w)
	j := l.job
	for _, r := range req.Results {
		if j.finished || r.Index < 0 || r.Index >= len(j.rows) {
			continue
		}
		if r.Error != "" {
			w.failed++
			w.consecFails++
			c.log.Warn("leased point failed", "lease", l.id, "worker", w.id,
				"job", j.spec.ID, "point", r.Index, "transient", r.Transient, "err", r.Error)
			if r.Transient {
				c.requeuePointLocked(j, r.Index, fmt.Errorf("cluster: point %d failed on worker %s: %s", r.Index, w.id, r.Error))
			} else {
				c.finishJobLocked(j, fmt.Errorf("cluster: point %d failed on worker %s: %s", r.Index, w.id, r.Error))
			}
			continue
		}
		w.consecFails = 0
		if j.rows[r.Index] != nil {
			continue // a stolen point's duplicate; the first result won
		}
		row, err := rowFromValues(j.spec.Responses, r.Values)
		if err != nil {
			c.finishJobLocked(j, fmt.Errorf("cluster: point %d from worker %s: %w", r.Index, w.id, err))
			continue
		}
		j.rows[r.Index] = row
		j.remaining--
		j.simWork += r.ElapsedNs
		j.retries += r.Retries
		j.panics += r.Panics
		w.completed++
		if c.metrics.completed != nil {
			c.metrics.completed.With(w.id).Inc()
		}
		if j.remaining == 0 {
			c.finishJobLocked(j, nil)
		}
	}
	if w.consecFails >= c.cfg.MaxWorkerFailures {
		c.evictLocked(w, fmt.Sprintf("%d consecutive failed points", w.consecFails))
	}
	return ResultsResponse{OK: true, Draining: c.draining}
}

// Deregister removes a worker cleanly; any leased points go back to the
// queue.
func (c *Coordinator) Deregister(req DeregisterRequest) DeregisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.Worker]
	if w == nil || w.epoch != req.Epoch {
		return DeregisterResponse{OK: true}
	}
	c.dropLeasesLocked(w, &WorkerLostError{Worker: w.id, Reason: "worker deregistered"})
	delete(c.workers, req.Worker)
	// Fold the departing worker's final snapshot into the accumulator so
	// fleet cache totals stay monotonic across graceful churn.
	c.departed.Add(w.cache)
	c.departed.Entries = 0 // entries is a gauge; departed caches hold none
	c.rebuildShardsLocked()
	if c.metrics.inflight != nil {
		c.metrics.inflight.With(w.id).Set(0)
	}
	c.log.Info("worker deregistered", "worker", w.id, "epoch", w.epoch)
	return DeregisterResponse{OK: true}
}

// Workers returns the fleet health view, sorted by worker ID.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		pts := 0
		for _, l := range w.leases {
			pts += len(l.points)
		}
		out = append(out, WorkerView{
			ID:                  w.id,
			State:               w.state,
			Epoch:               w.epoch,
			Capacity:            w.capacity,
			InflightLeases:      len(w.leases),
			InflightPoints:      pts,
			CompletedPoints:     w.completed,
			StolenLeases:        w.stolen,
			FailedPoints:        w.failed,
			ConsecutiveFailures: w.consecFails,
			LastHeartbeatAgoS:   now.Sub(w.lastBeat).Seconds(),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// LiveWorkers counts the active fleet members.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked()
}

func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, w := range c.workers {
		if w.state == workerActive {
			n++
		}
	}
	return n
}

// RunDesign shards the design across the fleet and blocks until every
// point has a row, the build fails, ctx is cancelled or the coordinator
// drains. On success the Dataset is bit-identical to a local
// Problem.RunDesignContext run of the same design (same deterministic
// engine, same column assembly order); on failure it carries the timing
// and fault-recovery stats gathered so far, mirroring the local contract.
func (c *Coordinator) RunDesign(ctx context.Context, spec JobSpec, d *doe.Design) (*core.Dataset, error) {
	if d == nil || d.N() == 0 {
		return nil, fmt.Errorf("cluster: empty design")
	}
	if len(spec.Responses) == 0 {
		return nil, fmt.Errorf("cluster: job spec needs ≥1 response")
	}
	n := d.N()
	j := &runJob{
		spec:      spec,
		design:    d,
		pending:   make([]int, n),
		queued:    make([]bool, n),
		attempts:  make([]int, n),
		rows:      make([]map[core.ResponseID]float64, n),
		remaining: n,
		done:      make(chan struct{}),
		start:     time.Now(),
	}
	for i := range j.pending {
		j.pending[i] = i
		j.queued[i] = true
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, ErrDraining
	}
	if c.liveWorkersLocked() == 0 {
		c.mu.Unlock()
		return nil, ErrNoWorkers
	}
	if j.spec.ID == "" {
		c.nextJob++
		j.spec.ID = fmt.Sprintf("fleet-%06d", c.nextJob)
	}
	c.jobs = append(c.jobs, j)
	workers := c.liveWorkersLocked()
	c.mu.Unlock()

	lg := obs.FromContext(ctx)
	lg.Info("fleet build started", "job", j.spec.ID, "design", d.Name, "runs", n, "workers", workers)

	select {
	case <-ctx.Done():
		c.mu.Lock()
		c.finishJobLocked(j, fmt.Errorf("cluster: build aborted: %w", context.Cause(ctx)))
		c.mu.Unlock()
		<-j.done
	case <-j.done:
	}

	c.mu.Lock()
	err := j.err
	ds := &core.Dataset{
		Design:          d,
		SimTime:         time.Since(j.start),
		SimWork:         time.Duration(j.simWork),
		Retries:         j.retries + j.requeues,
		PanicsRecovered: j.panics,
	}
	if err == nil {
		ds.Y = make(map[core.ResponseID][]float64, len(spec.Responses))
		for _, id := range spec.Responses {
			col := make([]float64, n)
			for i, row := range j.rows {
				col[i] = row[id]
			}
			ds.Y[id] = col
		}
	}
	c.mu.Unlock()
	if err != nil {
		lg.Warn("fleet build failed", "job", j.spec.ID, "err", err.Error())
		return ds, err
	}
	lg.Info("fleet build finished", "job", j.spec.ID, "runs", n,
		"sim_ms", float64(ds.SimTime.Microseconds())/1e3,
		"work_ms", float64(ds.SimWork.Microseconds())/1e3,
		"speedup", ds.Speedup(), "requeues", j.requeues)
	return ds, nil
}

// Shutdown drains the fabric: in-flight builds fail with ErrDraining,
// outstanding leases are cancelled with a logged reason, and workers are
// told to deregister on their next call. Idempotent; blocks until the
// monitor goroutine exits.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	if !c.draining {
		c.draining = true
		for _, j := range append([]*runJob(nil), c.jobs...) {
			c.finishJobLocked(j, ErrDraining)
		}
		for _, w := range c.workers {
			for _, l := range w.leases {
				c.log.Info("lease canceled", "lease", l.id, "worker", w.id,
					"job", l.job.spec.ID, "reason", "coordinator draining")
			}
			w.leases = make(map[string]*lease)
			c.setInflightLocked(w)
		}
		c.log.Info("coordinator draining", "workers", len(c.workers))
	}
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// monitor is the failure-detector sweep: heartbeat timeouts, lease
// timeouts (work-stealing), and the no-capacity backstop.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.sweep(now)
		}
	}
}

func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.state == workerActive && now.Sub(w.lastBeat) > c.cfg.HeartbeatTimeout {
			c.log.Warn("worker lost", "worker", w.id, "epoch", w.epoch,
				"silence_ms", float64(now.Sub(w.lastBeat).Microseconds())/1e3, "leases", len(w.leases))
			c.dropLeasesLocked(w, &WorkerLostError{Worker: w.id, Reason: "heartbeat timeout"})
			w.state = workerLost
			c.setInflightLocked(w)
			c.rebuildShardsLocked() // its shard ranges move to the survivors
		}
	}
	for _, w := range c.workers {
		for _, l := range w.leases {
			if !l.stolen && now.Sub(l.granted) > c.cfg.LeaseTimeout {
				l.stolen = true
				w.stolen++
				if c.metrics.stolen != nil {
					c.metrics.stolen.With(w.id).Inc()
				}
				c.log.Warn("lease stolen", "lease", l.id, "worker", w.id,
					"job", l.job.spec.ID, "age_ms", float64(now.Sub(l.granted).Microseconds())/1e3)
				for _, pt := range l.points {
					c.requeuePointLocked(l.job, pt.Index,
						fmt.Errorf("cluster: lease %s timed out on worker %s", l.id, w.id))
				}
				if !w.suspect && w.peerURL != "" {
					// A stolen lease marks the worker suspect: peers should
					// stop routing cache fetches at a node that can't finish
					// its own work in time. Its next successful results
					// upload clears the flag.
					w.suspect = true
					c.rebuildShardsLocked()
				}
			}
		}
	}
	// With the whole fleet gone, pending work can never finish: fail the
	// builds now instead of waiting out their deadlines. (Stolen leases
	// keep jobs live as long as any active worker remains.)
	if c.liveWorkersLocked() == 0 {
		for _, j := range append([]*runJob(nil), c.jobs...) {
			c.finishJobLocked(j, fmt.Errorf("cluster: build stalled: %w", ErrNoWorkers))
		}
	}
}

// dropLeasesLocked cancels every lease of a worker, re-enqueueing the
// unfinished points under the given cause.
func (c *Coordinator) dropLeasesLocked(w *workerState, cause error) {
	for _, l := range w.leases {
		c.log.Info("lease canceled", "lease", l.id, "worker", w.id,
			"job", l.job.spec.ID, "reason", cause.Error())
		for _, pt := range l.points {
			c.requeuePointLocked(l.job, pt.Index, cause)
		}
	}
	w.leases = make(map[string]*lease)
	c.setInflightLocked(w)
}

// evictLocked circuit-breaks a worker after consecutive failures: its
// leases are re-enqueued and its epoch answers Gone. Re-registering
// resets the breaker with a fresh epoch.
func (c *Coordinator) evictLocked(w *workerState, reason string) {
	if w.state == workerEvicted {
		return
	}
	c.log.Warn("worker evicted", "worker", w.id, "epoch", w.epoch, "reason", reason)
	c.dropLeasesLocked(w, &WorkerLostError{Worker: w.id, Reason: "evicted: " + reason})
	w.state = workerEvicted
	c.rebuildShardsLocked()
	if c.metrics.evicted != nil {
		c.metrics.evicted.With(w.id).Inc()
	}
}

// requeuePointLocked puts a point back on its job's queue unless it is
// already filled, already queued, or out of grant budget — in which case
// the build fails with the exhausting cause.
func (c *Coordinator) requeuePointLocked(j *runJob, idx int, cause error) {
	if j.finished || j.rows[idx] != nil || j.queued[idx] {
		return
	}
	if j.attempts[idx] >= c.cfg.MaxPointAttempts {
		c.finishJobLocked(j, fmt.Errorf("cluster: point %d failed after %d grants: %w", idx, j.attempts[idx], cause))
		return
	}
	j.pending = append(j.pending, idx)
	j.queued[idx] = true
	j.requeues++
	if c.metrics.requeued != nil {
		c.metrics.requeued.Inc()
	}
}

// finishJobLocked resolves a job exactly once (err == nil means success)
// and removes it from the active list.
func (c *Coordinator) finishJobLocked(j *runJob, err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.err = err
	for i, other := range c.jobs {
		if other == j {
			c.jobs = append(c.jobs[:i], c.jobs[i+1:]...)
			break
		}
	}
	close(j.done)
}

// rowFromValues decodes a worker's response map into a typed row,
// requiring every spec response to be present.
func rowFromValues(ids []core.ResponseID, vals map[string]float64) (map[core.ResponseID]float64, error) {
	row := make(map[core.ResponseID]float64, len(ids))
	for _, id := range ids {
		v, ok := vals[string(id)]
		if !ok {
			return nil, fmt.Errorf("cluster: result lacks response %q", id)
		}
		row[id] = v
	}
	return row, nil
}
