package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apiclient"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// testKey is a canonical 64-hex fingerprint for peer-protocol tests.
var testKey = strings.Repeat("0123456789abcdef", 4)

// TestPeerFetchAndStoreRoundTrip drives both sides of the peer protocol
// over a real listener: a clean not-found counts nothing, a replication
// push lands in the owner's cache, and the subsequent fetch is answered —
// with the counters attributed to the right side of the wire.
func TestPeerFetchAndStoreRoundTrip(t *testing.T) {
	cacheB := simcache.New(simcache.Options{Capacity: 16})
	pB := newPeerCache("B", cacheB, time.Second, nil, obs.Nop())
	urlB, stopB, err := pB.serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stopB()

	m := &ShardMap{Generation: 1, Shards: 1, Owners: []string{"B"},
		Peers: map[string]string{"B": urlB}}
	cacheA := simcache.New(simcache.Options{Capacity: 16})
	pA := newPeerCache("A", cacheA, time.Second, nil, obs.Nop())
	pA.adopt(m)
	ctx := context.Background()

	// First touch: the owner has nothing — a clean miss, not a timeout.
	if _, ok := pA.Fetch(ctx, testKey, "eng"); ok {
		t.Fatal("fetch of an unstored key answered")
	}
	if st := pA.stats(); st.PeerFetches != 0 || st.PeerTimeouts != 0 {
		t.Fatalf("clean not-found moved counters: %+v", st)
	}

	// Replicate to the owner; the next fetch is answered byte-for-byte.
	res := &sim.Result{FinalStoreV: 3.25, NetEnergyMargin: 1e-3}
	res.Node.Packets = 42
	pA.Store(ctx, testKey, "eng", res)
	got, ok := pA.Fetch(ctx, testKey, "eng")
	if !ok || got.FinalStoreV != 3.25 || got.NetEnergyMargin != 1e-3 || got.Node.Packets != 42 {
		t.Fatalf("fetch after store: ok=%v res=%+v", ok, got)
	}
	if st := pA.stats(); st.PeerFetches != 1 || st.PeerTimeouts != 0 {
		t.Fatalf("fetcher counters: %+v", st)
	}
	if st := pB.stats(); st.PeerServed != 1 || st.PeerStores != 1 {
		t.Fatalf("owner counters: %+v", st)
	}

	// The owner resolves its own keys locally — no self-dial.
	pB.adopt(m)
	if _, ok := pB.Fetch(ctx, testKey, "eng"); ok {
		t.Fatal("self-owned key must resolve locally, not over the wire")
	}
	if st := pB.stats(); st.PeerFetches != 0 {
		t.Fatalf("self-route counted a peer fetch: %+v", st)
	}

	// A fetcher behind the map generation is told so.
	api := apiclient.New(urlB, apiclient.Options{})
	var pg PeerGetResponse
	if err := api.Post(ctx, PathPeerGet, PeerGetRequest{
		ProtoHeader: ProtoHeader{ProtoVersion: ProtoVersion},
		Key:         testKey, Engine: "eng", Generation: 0,
	}, &pg); err != nil {
		t.Fatal(err)
	}
	if !pg.Found || !pg.Stale {
		t.Fatalf("stale-generation lookup: %+v", pg)
	}
}

// TestPeerAdoptKeepsNewestGeneration: adopt is monotonic — an older or
// equal map never replaces a newer one, whatever the call order.
func TestPeerAdoptKeepsNewestGeneration(t *testing.T) {
	p := newPeerCache("A", simcache.New(simcache.Options{Capacity: 4}), time.Second, nil, obs.Nop())
	if p.generation() != 0 {
		t.Fatalf("fresh peer generation %d", p.generation())
	}
	p.adopt(nil) // no-op
	p.adopt(&ShardMap{Generation: 2, Shards: 1, Owners: []string{"x"}})
	p.adopt(&ShardMap{Generation: 1, Shards: 1, Owners: []string{"y"}})
	p.adopt(&ShardMap{Generation: 2, Shards: 1, Owners: []string{"z"}})
	if g := p.generation(); g != 2 {
		t.Fatalf("generation %d after adoptions, want 2", g)
	}
	if id, _ := p.smap.Load().Owner("k"); id != "x" {
		t.Fatalf("an equal-generation map replaced the held one (owner %q)", id)
	}
}

// TestPeerFetchTimeoutFallsBackToLocal is the satellite acceptance test:
// with the key's owner hanging, the fetch times out, the point simulates
// locally (correct answer, engine executed once), and the failure is
// counted as a peer timeout — a slow peer costs latency, never the build.
func TestPeerFetchTimeoutFallsBackToLocal(t *testing.T) {
	// The owner never answers: each request is held until the test ends.
	// (Not on r.Context(): with an unread POST body the server can't see
	// the client hang up, and hang.Close would wait on the handler forever.)
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer hang.Close()
	defer close(release)

	cache := simcache.New(simcache.Options{Capacity: 16})
	peer := newPeerCache("A", cache, 30*time.Millisecond, nil, obs.Nop())
	peer.adopt(&ShardMap{Generation: 1, Shards: 1, Owners: []string{"B"},
		Peers: map[string]string{"B": hang.URL}})
	cache.SetRemote(peer)
	defer cache.SetRemote(nil)

	p := testProblem(0.6, 2)
	p.Runner = cache
	pt := testDesign(t).Runs[0]
	vals, _, err := p.RunPoint(context.Background(), 0, pt)
	if err != nil {
		t.Fatalf("run must survive a hanging peer: %v", err)
	}
	// Fetch timed out once and the engine ran locally; the (best-effort)
	// replication push also hits the hanging owner but is not a fetch
	// timeout.
	st := peer.stats()
	if st.PeerTimeouts != 1 {
		t.Fatalf("peer timeouts %d, want 1 (stats %+v)", st.PeerTimeouts, st)
	}
	if st.Misses != 1 || st.PeerFetches != 0 {
		t.Fatalf("fallback accounting wrong: %+v", st)
	}
	// The locally simulated answer is bit-identical to an uncached run.
	want, _, err := testProblem(0.6, 2).RunPoint(context.Background(), 0, pt)
	if err != nil {
		t.Fatal(err)
	}
	for id, w := range want {
		if vals[id] != w {
			t.Fatalf("response %s: %v != %v (fallback not bit-identical)", id, vals[id], w)
		}
	}
}

// TestPeerHandlerRejectsMalformedRequests pins the peer wire gates: wrong
// proto_version, non-fingerprint keys (path traversal) and empty pushes
// are all rejected with typed codes before touching the cache.
func TestPeerHandlerRejectsMalformedRequests(t *testing.T) {
	cache := simcache.New(simcache.Options{Capacity: 4})
	p := newPeerCache("B", cache, time.Second, nil, obs.Nop())
	url, stop, err := p.serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	api := apiclient.New(url, apiclient.Options{})
	ctx := context.Background()

	err = api.Post(ctx, PathPeerGet, PeerGetRequest{
		ProtoHeader: ProtoHeader{ProtoVersion: 1}, Key: testKey}, nil)
	if apiclient.ErrorCode(err) != "proto_mismatch" {
		t.Fatalf("v1 peer get: %v, want proto_mismatch", err)
	}
	err = api.Post(ctx, PathPeerGet, PeerGetRequest{
		ProtoHeader: ProtoHeader{ProtoVersion: ProtoVersion}, Key: "../../etc/passwd"}, nil)
	if apiclient.ErrorCode(err) != "invalid_request" {
		t.Fatalf("traversal key: %v, want invalid_request", err)
	}
	err = api.Post(ctx, PathPeerPut, PeerPutRequest{
		ProtoHeader: ProtoHeader{ProtoVersion: ProtoVersion}, Key: testKey, Result: nil}, nil)
	if apiclient.ErrorCode(err) != "invalid_request" {
		t.Fatalf("nil-result push: %v, want invalid_request", err)
	}
	if st := p.stats(); st.PeerServed != 0 || st.PeerStores != 0 {
		t.Fatalf("rejected requests moved counters: %+v", st)
	}
}

// cachedProblem is testProblem with the Runner left open, so the worker
// fronts runs with its own simcache — the sharded-tier configuration.
func cachedProblem(excite, horizon float64) *core.Problem {
	p := testProblem(excite, horizon)
	p.Runner = nil
	return p
}

// startCacheWorker runs a fleet worker that participates in the sharded
// cache tier: its simcache is both the runner chain and the peer-served
// store, with a real peer listener on a loopback port.
func startCacheWorker(t *testing.T, url, id string, runner simcache.Runner, cache *simcache.Cache) (*Worker, chan error) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: url,
		ID:          id,
		Problem:     cachedProblem,
		Runner:      runner,
		Cache:       cache,
		PeerAddr:    "127.0.0.1:0",
		Concurrency: 2,
		Heartbeat:   10 * time.Millisecond,
		Poll:        2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(context.Background()) }()
	return w, errc
}

// TestPeerOwnerKillChaosConverges is the cache-tier chaos e2e: the worker
// owning every shard range (it registered alone, so the whole key space is
// its "hot range") is killed mid-build. The coordinator declares it lost,
// reassigns its ranges to the survivors with a bumped generation, and the
// build still converges bit-identical to a local run — ownership is a
// routing hint, so losing the owner can cost re-simulation but never
// correctness.
func TestPeerOwnerKillChaosConverges(t *testing.T) {
	c := NewCoordinator(fastConfig()) // 250ms heartbeat timeout, 10ms tick
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	defer c.Shutdown()

	// The victim joins alone: generation 1 assigns it every slot, and it is
	// guaranteed to lease (and die holding) the first batch.
	inj := fault.New(fault.Config{Seed: 1, PKill: 1})
	victimCache := simcache.New(simcache.Options{Capacity: 64})
	victim, errcKill := startCacheWorker(t, srv.URL, "w-victim", inj.Wrap(victimCache), victimCache)
	inj.OnKill(victim.Kill)
	waitLive(t, c, 1)
	st := c.CacheState()
	if st.Map == nil || st.Map.Generation != 1 {
		t.Fatalf("lone member map: %+v", st.Map)
	}
	for slot, id := range st.Map.Owners {
		if id != "w-victim" {
			t.Fatalf("slot %d not owned by the lone victim: %q", slot, id)
		}
	}

	design := testDesign(t)
	done := startBuild(c, design)
	wantRunErr(t, errcKill, ErrKilled, "w-victim")

	caches := []*simcache.Cache{
		simcache.New(simcache.Options{Capacity: 64}),
		simcache.New(simcache.Options{Capacity: 64}),
	}
	_, errc1 := startCacheWorker(t, srv.URL, "w-ok-1", caches[0], caches[0])
	_, errc2 := startCacheWorker(t, srv.URL, "w-ok-2", caches[1], caches[1])

	var b built
	select {
	case b = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("chaos build never converged")
	}
	if b.err != nil {
		t.Fatal(b.err)
	}
	sameY(t, b.ds, localDataset(t, design))

	// The victim's ranges were re-owned under a bumped generation: two
	// healthy joins plus the loss means at least generation 3, and no slot
	// may still point at the corpse.
	st = c.CacheState()
	if st.Map.Generation < 3 {
		t.Fatalf("map generation %d after kill + 2 joins, want >= 3", st.Map.Generation)
	}
	for slot, id := range st.Map.Owners {
		if id == "w-victim" {
			t.Fatalf("slot %d still owned by the dead victim", slot)
		}
		if id != "w-ok-1" && id != "w-ok-2" {
			t.Fatalf("slot %d owned by %q, want a survivor", slot, id)
		}
	}
	for _, wv := range st.Workers {
		if wv.ID == "w-victim" && wv.State != workerLost {
			t.Fatalf("victim state %q, want lost", wv.State)
		}
	}
	// Every unique point was simulated by the survivors (the victim
	// reported nothing), and the fleet counters saw the engine work.
	if st.Totals.Misses == 0 {
		t.Fatalf("fleet totals never counted the survivors' work: %+v", st.Totals)
	}

	c.Shutdown()
	wantRunErr(t, errc1, nil, "w-ok-1")
	wantRunErr(t, errc2, nil, "w-ok-2")
}
