package cluster

import (
	"hash/fnv"
	"sort"
)

// DefaultShards is the number of hash slots the fingerprint key space is
// divided into. 64 slots over a handful of workers keeps ownership
// granular enough that joins and losses move ~1/N of the key space while
// the map stays a few hundred bytes on the wire.
const DefaultShards = 64

// ShardMap is the coordinator-published assignment of simcache fingerprint
// key ranges to workers. A key's slot is ShardOf(key, Shards); Owners[slot]
// names the worker that caches that slot (or "" while no peer-capable
// worker is registered), and Peers maps worker IDs to their peer-cache
// base URLs.
//
// Maps are immutable once published: the coordinator builds a fresh value
// (with Generation bumped) whenever the peer-capable membership changes —
// register, deregister, heartbeat-timeout loss, circuit-break eviction,
// and lease-steal suspicion all trigger a rebuild. Workers therefore share
// *ShardMap pointers freely and compare Generation to detect staleness.
//
// Ownership is a routing hint, never a correctness boundary: the cache is
// content-addressed, so an answer for key K is valid no matter which
// incarnation of which worker serves it. A stale map costs at worst one
// redundant simulation.
type ShardMap struct {
	Generation uint64            `json:"generation"`
	Shards     int               `json:"shards"`
	Owners     []string          `json:"owners"`
	Peers      map[string]string `json:"peers,omitempty"`
}

// ShardOf maps a fingerprint key to its slot (FNV-1a over the key bytes).
func ShardOf(key string, shards int) int {
	if shards <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(shards))
}

// Owner resolves a key to its owning worker ID and peer URL; both empty
// when the slot is unowned.
func (m *ShardMap) Owner(key string) (id, peerURL string) {
	if m == nil || len(m.Owners) == 0 {
		return "", ""
	}
	id = m.Owners[ShardOf(key, m.Shards)]
	return id, m.Peers[id]
}

// assignShards distributes slots over workers by rendezvous (highest
// random weight) hashing: each slot is owned by the worker with the
// highest hash(worker, slot). Deterministic in the member set, and minimal
// disruption — a membership change only moves the slots the joining or
// leaving worker wins or held.
func assignShards(ids []string, shards int) []string {
	owners := make([]string, shards)
	if len(ids) == 0 {
		return owners
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	var buf [8]byte
	for slot := range owners {
		var best uint64
		for _, id := range sorted {
			h := fnv.New64a()
			h.Write([]byte(id))
			buf[0] = byte(slot)
			buf[1] = byte(slot >> 8)
			buf[2] = byte(slot >> 16)
			buf[3] = byte(slot >> 24)
			h.Write(buf[:4])
			if w := h.Sum64(); owners[slot] == "" || w > best {
				best = w
				owners[slot] = id
			}
		}
	}
	return owners
}

// validCacheKey gates peer-protocol keys: simcache fingerprints are
// exactly 64 lowercase hex characters, and the disk tier uses the key as
// a filename — anything else (path traversal, junk) is rejected at the
// wire.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
