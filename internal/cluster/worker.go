package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simcache"
)

// WorkerConfig configures a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// ID is the fleet-unique worker ID; empty mints one ("w-...").
	ID string
	// Problem instantiates the design problem leases describe.
	Problem ProblemFactory
	// Runner, when set, fronts every run the worker executes — the
	// simcache chain (cache, fault injector) identical points dedup
	// through. Problems that wire their own Runner keep it.
	Runner simcache.Runner
	// Concurrency is the number of leased points run in parallel
	// (default 1).
	Concurrency int
	// MaxLeasePoints caps the points requested per lease; <=0 lets the
	// coordinator pick.
	MaxLeasePoints int
	// Heartbeat and Poll override the coordinator-advertised intervals
	// when positive.
	Heartbeat time.Duration
	Poll      time.Duration
	// Cache, when set, joins the worker to the fleet's sharded cache tier:
	// misses consult the owning peer before simulating, and fresh results
	// replicate to the owner. Cache should be the same *simcache.Cache the
	// Runner chain fronts runs with — the remote tier hooks its fill path.
	Cache *simcache.Cache
	// PeerAddr is the peer-protocol listen address (e.g. ":9090" or
	// "127.0.0.1:0"); empty means the worker fetches from peers but serves
	// nothing, so it owns no shard ranges.
	PeerAddr string
	// PeerAdvertise overrides the advertised peer base URL (for NAT'd or
	// named hosts); empty derives "http://<listen-addr>".
	PeerAdvertise string
	// PeerTimeout bounds one peer fetch or replication push (default 2s);
	// on expiry the worker simulates locally.
	PeerTimeout time.Duration
	// Log receives worker lifecycle lines; nil discards them.
	Log *slog.Logger
}

// Worker is one fleet member: it registers with the coordinator,
// heartbeats, pulls leases, runs the points through core.RunPoint (so the
// full retry/timeout/panic-containment semantics apply locally) and
// streams results back. Run blocks until the context is cancelled, the
// coordinator drains, or Kill takes the worker down.
type Worker struct {
	cfg    WorkerConfig
	id     string
	client *Client
	log    *slog.Logger

	hb   time.Duration
	poll time.Duration

	mu     sync.Mutex
	epoch  string
	cancel context.CancelCauseFunc

	// peer is the sharded cache tier (nil when cfg.Cache is nil); peerURL
	// is the base URL advertised at registration ("" = serves nothing).
	peer    *peerCache
	peerURL string

	killed atomic.Bool
	wg     sync.WaitGroup
}

// NewWorker builds a worker; start it with Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if cfg.Problem == nil {
		return nil, fmt.Errorf("cluster: worker needs a problem factory")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	id := cfg.ID
	if id == "" {
		id = obs.NewID("w-")
	}
	lg := cfg.Log
	if lg == nil {
		lg = obs.Nop()
	}
	return &Worker{
		cfg:    cfg,
		id:     id,
		client: &Client{Base: cfg.Coordinator, HTTP: cfg.HTTP},
		log:    lg.With("worker", id),
		hb:     cfg.Heartbeat,
		poll:   cfg.Poll,
	}, nil
}

// ID returns the worker's fleet ID.
func (w *Worker) ID() string { return w.id }

// Kill simulates an abrupt worker death (the chaos hook behind the fault
// injector's Kill mode): every in-flight run is cancelled, heartbeats
// stop, nothing is reported back, and Run returns ErrKilled. The
// coordinator notices via heartbeat timeout and re-enqueues the leased
// points.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.mu.Lock()
	cancel := w.cancel
	w.mu.Unlock()
	if cancel != nil {
		cancel(ErrKilled)
	}
}

func (w *Worker) setEpoch(e string) {
	w.mu.Lock()
	w.epoch = e
	w.mu.Unlock()
}

func (w *Worker) getEpoch() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Run is the worker's pull loop. It returns nil after a clean drain
// (coordinator shutting down), ErrKilled after a chaos kill, or the
// context's cause.
func (w *Worker) Run(ctx context.Context) (err error) {
	runCtx, cancel := context.WithCancelCause(ctx)
	w.mu.Lock()
	w.cancel = cancel
	w.mu.Unlock()
	defer func() {
		cancel(nil)
		w.wg.Wait()
		if w.killed.Load() {
			err = ErrKilled
		}
	}()

	if w.cfg.Cache != nil {
		w.peer = newPeerCache(w.id, w.cfg.Cache, w.cfg.PeerTimeout, w.cfg.HTTP, w.log)
		if w.cfg.PeerAddr != "" {
			url, stop, perr := w.peer.serve(w.cfg.PeerAddr, w.cfg.PeerAdvertise)
			if perr != nil {
				return perr
			}
			w.peerURL = url
			defer stop()
		}
		w.cfg.Cache.SetRemote(w.peer)
		defer w.cfg.Cache.SetRemote(nil)
	}

	draining, err := w.register(runCtx)
	if err != nil || draining {
		return err
	}
	w.wg.Add(1)
	go w.heartbeatLoop(runCtx)

	for {
		if runCtx.Err() != nil {
			return context.Cause(runCtx)
		}
		lr, err := w.client.Lease(runCtx, LeaseRequest{
			Worker: w.id, Epoch: w.getEpoch(), Max: w.cfg.MaxLeasePoints,
			Generation: w.generation(),
		})
		switch {
		case err != nil:
			// Coordinator unreachable: keep polling until it returns or the
			// context ends.
			w.log.Warn("lease poll failed", "err", err.Error())
			if !sleepCtx(runCtx, w.poll) {
				return context.Cause(runCtx)
			}
			continue
		case lr.Draining:
			return w.drain(ctx)
		case lr.Gone:
			if draining, err := w.register(runCtx); err != nil || draining {
				return err
			}
			continue
		case lr.Lease == nil:
			w.adoptMap(lr.Map)
			if !sleepCtx(runCtx, w.poll) {
				return context.Cause(runCtx)
			}
			continue
		}

		// Adopt the map carried on the grant before executing, so this
		// lease's misses route against the generation it was granted under.
		w.adoptMap(lr.Map)
		results := w.execute(runCtx, lr.Lease)
		if w.killed.Load() {
			return ErrKilled // a dead worker reports nothing
		}
		rr, err := w.client.Results(runCtx, ResultsRequest{
			Worker: w.id, Epoch: w.getEpoch(), Lease: lr.Lease.ID, Results: results,
			Cache: w.cacheStats(),
		})
		switch {
		case err != nil:
			// The upload was lost; the coordinator will steal the lease and
			// re-run its points. Carry on.
			w.log.Warn("results upload failed", "lease", lr.Lease.ID, "err", err.Error())
		case rr.Draining:
			return w.drain(ctx)
		case rr.Gone:
			if draining, err := w.register(runCtx); err != nil || draining {
				return err
			}
		}
	}
}

// register announces the worker, retrying with backoff while the
// coordinator is unreachable. Reports draining=true when the coordinator
// refused admission because it is shutting down.
func (w *Worker) register(ctx context.Context) (draining bool, err error) {
	backoff := 50 * time.Millisecond
	for {
		resp, err := w.client.Register(ctx, RegisterRequest{
			Worker: w.id, Capacity: w.cfg.Concurrency, PeerURL: w.peerURL,
		})
		if err == nil {
			if resp.Draining {
				w.log.Info("coordinator draining, not joining")
				return true, nil
			}
			w.setEpoch(resp.Epoch)
			w.adoptMap(resp.Map)
			// Adopt the advertised cadence unless configured explicitly.
			// Only the first registration can write these: the heartbeat
			// loop (which reads them) starts after it returns.
			if w.hb <= 0 {
				w.hb = time.Duration(resp.HeartbeatS * float64(time.Second))
				if w.hb <= 0 {
					w.hb = 2 * time.Second
				}
			}
			if w.poll <= 0 {
				w.poll = time.Duration(resp.PollS * float64(time.Second))
				if w.poll <= 0 {
					w.poll = 200 * time.Millisecond
				}
			}
			w.log.Info("worker registered", "epoch", resp.Epoch,
				"heartbeat_ms", float64(w.hb.Microseconds())/1e3)
			return false, nil
		}
		w.log.Warn("register failed, retrying", "err", err.Error())
		if !sleepCtx(ctx, backoff) {
			return false, context.Cause(ctx)
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// heartbeatLoop keeps the incarnation alive. Gone/Draining answers are
// acted on by the main loop at its next lease call; the heartbeat only
// maintains liveness.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	defer w.wg.Done()
	t := time.NewTicker(w.hb)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			hr, err := w.client.Heartbeat(ctx, HeartbeatRequest{
				Worker: w.id, Epoch: w.getEpoch(),
				Generation: w.generation(), Cache: w.cacheStats(),
			})
			if err != nil && ctx.Err() == nil {
				w.log.Warn("heartbeat failed", "err", err.Error())
				continue
			}
			w.adoptMap(hr.Map)
		}
	}
}

// drain deregisters cleanly and ends the run loop. It uses the parent
// context (not the kill-cancellable one) so a drain triggered by
// coordinator shutdown still completes the goodbye.
func (w *Worker) drain(ctx context.Context) error {
	w.log.Info("coordinator draining, deregistering")
	if _, err := w.client.Deregister(ctx, DeregisterRequest{Worker: w.id, Epoch: w.getEpoch()}); err != nil {
		w.log.Warn("deregister failed", "err", err.Error())
	}
	return nil
}

// execute runs every point of a lease through core.RunPoint, at the
// configured concurrency, with the lease's trace ID threaded into the obs
// context so coordinator, worker and simulation log lines correlate.
func (w *Worker) execute(ctx context.Context, l *LeaseView) []PointResult {
	p := w.cfg.Problem(l.Excite, l.Horizon)
	if p.Runner == nil && w.cfg.Runner != nil {
		p.Runner = w.cfg.Runner
	}
	lg := w.log.With("lease", l.ID, "job", l.Job)
	if l.Trace != "" {
		lg = lg.With("trace", l.Trace)
		ctx = obs.WithTraceID(ctx, l.Trace)
	}
	ctx = obs.WithLogger(ctx, lg)
	lg.Debug("lease executing", "points", len(l.Points))

	out := make([]PointResult, len(l.Points))
	sem := make(chan struct{}, w.cfg.Concurrency)
	var wg sync.WaitGroup
	for k, pt := range l.Points {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int, pt PointAssignment) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			vals, st, err := p.RunPoint(ctx, pt.Index, pt.Coded)
			pr := PointResult{
				Index:     pt.Index,
				ElapsedNs: time.Since(start).Nanoseconds(),
				Retries:   st.Retries,
				Panics:    st.Panics,
			}
			if err != nil {
				pr.Error = err.Error()
				pr.Transient = core.IsTransient(err)
			} else {
				pr.Values = make(map[string]float64, len(vals))
				for id, v := range vals {
					pr.Values[string(id)] = v
				}
			}
			out[k] = pr
		}(k, pt)
	}
	wg.Wait()
	return out
}

// adoptMap installs a newer shard map on the peer tier; a nil map or a
// cache-less worker is a no-op.
func (w *Worker) adoptMap(m *ShardMap) {
	if w.peer != nil {
		w.peer.adopt(m)
	}
}

// generation is the shard-map generation this worker holds (0 = none).
func (w *Worker) generation() uint64 {
	if w.peer == nil {
		return 0
	}
	return w.peer.generation()
}

// cacheStats snapshots the worker's cache counters for piggybacking; nil
// for cache-less workers.
func (w *Worker) cacheStats() *CacheStats {
	if w.peer == nil {
		return nil
	}
	return w.peer.stats()
}

// sleepCtx waits d or until ctx ends; reports whether the full delay
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
