// Package cluster is the distributed build fabric: it shards the design
// points of one DoE build across a fleet of simnode workers over a small
// pull-based HTTP/JSON protocol.
//
// The coordinator (embedded in ehdoed, see internal/serve) owns the only
// authoritative state: which workers exist, which points each outstanding
// lease covers, and which points already produced a row. Workers are
// stateless pullers — they register, heartbeat, lease a batch of coded
// design points, run them through their local simcache.Runner chain, and
// stream the results back. Every fault the fabric adds on top of a local
// run maps onto the repo's existing typed-error semantics:
//
//   - A worker that stops heartbeating is declared lost; its leased points
//     are re-enqueued under a *WorkerLostError (Transient() == true), so
//     whole-worker loss retries exactly like a transient per-run fault.
//   - A lease that outlives the lease timeout is stolen: its unfinished
//     points are re-enqueued for other workers while late results stay
//     acceptable — the first result for a point wins, so stealing can only
//     add capacity, never change values.
//   - A worker whose reported failures hit the consecutive-failure limit
//     is circuit-broken (evicted); it may rejoin by re-registering, which
//     issues a fresh epoch.
//   - Re-registration under the same worker ID (a restarted or partitioned
//     twin — the split-brain case) supersedes the old incarnation: the old
//     epoch's leases are re-enqueued and its requests answer Gone, so at
//     most one incarnation can return results.
//
// Determinism: the simulator is deterministic and design points are
// distributed verbatim (encoding/json round-trips float64 exactly), so a
// fleet build assembles a Dataset bit-identical to a local
// RunDesignContext run — regardless of worker count, lease interleaving,
// or mid-build worker loss.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Protocol paths served by Coordinator.Handler and internal/serve, and
// dialed by the apiclient-backed Client. The peer paths are served by each
// worker's peer-cache listener, not the coordinator.
const (
	PathRegister   = "/v1/cluster/register"
	PathHeartbeat  = "/v1/cluster/heartbeat"
	PathLease      = "/v1/cluster/lease"
	PathResults    = "/v1/cluster/results"
	PathDeregister = "/v1/cluster/deregister"
	PathWorkers    = "/v1/cluster/workers"
	PathCache      = "/v1/cluster/cache"
	PathPeerGet    = "/v1/peer/cache/get"
	PathPeerPut    = "/v1/peer/cache/put"
)

// ProtoVersion is the cluster wire-protocol generation. Every request
// carries it (via the embedded ProtoHeader) and both sides reject a
// mismatch with *ProtoMismatchError, so a mixed fleet fails loudly at the
// first call instead of silently misinterpreting fields. Version 2 added
// the sharded cache tier (shard maps, peer fetch, cache stats).
const ProtoVersion = 2

// ProtoHeader is embedded in every protocol request; the client stamps it,
// the server checks it with CheckProto.
type ProtoHeader struct {
	ProtoVersion int `json:"proto_version"`
}

// Proto returns the carried protocol version.
func (h ProtoHeader) Proto() int { return h.ProtoVersion }

// Versioned is any message carrying a protocol version.
type Versioned interface{ Proto() int }

// ProtoMismatchError reports a request speaking the wrong protocol
// generation; the HTTP layer maps it to 400/proto_mismatch.
type ProtoMismatchError struct {
	Got  int
	Want int
}

func (e *ProtoMismatchError) Error() string {
	return fmt.Sprintf("cluster: protocol version %d, this side speaks %d", e.Got, e.Want)
}

// CheckProto validates a message's protocol version against this build's.
func CheckProto(v Versioned) error {
	if got := v.Proto(); got != ProtoVersion {
		return &ProtoMismatchError{Got: got, Want: ProtoVersion}
	}
	return nil
}

// RegisterRequest announces a worker to the coordinator. Re-registering an
// ID that is already known supersedes the previous incarnation (its leases
// are re-enqueued and its epoch invalidated).
type RegisterRequest struct {
	ProtoHeader
	// Worker is the fleet-unique worker ID.
	Worker string `json:"worker"`
	// Capacity is the worker's concurrent point capacity (informational).
	Capacity int `json:"capacity,omitempty"`
	// PeerURL, when set, is the worker's peer-cache base URL; the worker
	// joins the sharded cache tier and owns a slice of the fingerprint key
	// space. Empty means the worker runs cache-less (or local-only) and
	// owns nothing.
	PeerURL string `json:"peer_url,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// Epoch identifies this incarnation of the worker; every subsequent
	// request must echo it. A Gone answer means the epoch was superseded
	// or evicted — re-register to obtain a fresh one.
	Epoch string `json:"epoch"`
	// HeartbeatS is the heartbeat interval the coordinator expects (s).
	HeartbeatS float64 `json:"heartbeat_s"`
	// PollS is the suggested idle lease-poll interval (s).
	PollS float64 `json:"poll_s"`
	// Draining reports that the coordinator is shutting down.
	Draining bool `json:"draining,omitempty"`
	// Map is the current cache shard map (nil until a peer-capable worker
	// has registered).
	Map *ShardMap `json:"map,omitempty"`
}

// HeartbeatRequest keeps a worker's incarnation alive and piggybacks its
// cache-tier state: the shard-map generation it holds (so the coordinator
// can answer with a newer map) and its cumulative cache counters.
type HeartbeatRequest struct {
	ProtoHeader
	Worker string `json:"worker"`
	Epoch  string `json:"epoch"`
	// Generation is the shard-map generation the worker currently holds.
	Generation uint64 `json:"generation,omitempty"`
	// Cache is the worker's cumulative cache-counter snapshot.
	Cache *CacheStats `json:"cache,omitempty"`
}

// HeartbeatResponse answers a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
	// Gone means this (worker, epoch) is no longer valid: superseded by a
	// re-registration, evicted, or expired. The worker must re-register.
	Gone bool `json:"gone,omitempty"`
	// Draining asks the worker to deregister and exit.
	Draining bool `json:"draining,omitempty"`
	// Map carries the current shard map when it is newer than the
	// generation the worker reported; nil means the worker is up to date.
	Map *ShardMap `json:"map,omitempty"`
}

// LeaseRequest asks for a batch of design points to run.
type LeaseRequest struct {
	ProtoHeader
	Worker string `json:"worker"`
	Epoch  string `json:"epoch"`
	// Max caps the number of points in the granted lease; the coordinator
	// clamps it to its own batch limit. <=0 means the coordinator's limit.
	Max int `json:"max,omitempty"`
	// Generation is the shard-map generation the worker currently holds.
	Generation uint64 `json:"generation,omitempty"`
}

// LeaseResponse grants at most one lease; a nil Lease means no work is
// available right now. Map rides along when the worker's reported
// generation is stale, so a worker never executes a lease against an
// older map than the coordinator granted it under.
type LeaseResponse struct {
	Lease    *LeaseView `json:"lease,omitempty"`
	Gone     bool       `json:"gone,omitempty"`
	Draining bool       `json:"draining,omitempty"`
	Map      *ShardMap  `json:"map,omitempty"`
}

// PointAssignment is one design point of a lease, in coded units.
type PointAssignment struct {
	Index int       `json:"index"`
	Coded []float64 `json:"coded"`
}

// LeaseView is the wire form of one work lease: the problem parameters a
// worker needs to instantiate the identical Problem locally, plus the
// assigned points. Trace is the submitting build's trace ID, so obs log
// lines thread coordinator → worker → simulation run.
type LeaseView struct {
	ID        string            `json:"id"`
	Job       string            `json:"job"`
	Trace     string            `json:"trace,omitempty"`
	Excite    float64           `json:"excite"`
	Horizon   float64           `json:"horizon_s"`
	Responses []string          `json:"responses"`
	Points    []PointAssignment `json:"points"`
}

// PointResult is the outcome of one leased point.
type PointResult struct {
	Index int `json:"index"`
	// Values maps response IDs to simulated values; nil when Error is set.
	Values map[string]float64 `json:"values,omitempty"`
	// Error is the worker-side failure, already past the worker's local
	// retry budget. Transient reports whether it was a retryable class
	// (core.IsTransient), which decides whether the coordinator re-enqueues
	// the point.
	Error     string `json:"error,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	// ElapsedNs, Retries and Panics feed the Dataset's SimWork and
	// fault-recovery stats.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
	Retries   int   `json:"retries,omitempty"`
	Panics    int   `json:"panics,omitempty"`
}

// ResultsRequest streams a finished lease's results back. Cache piggybacks
// the worker's cumulative cache counters so fleet-wide cache accounting is
// current the moment a build finishes, not one heartbeat later.
type ResultsRequest struct {
	ProtoHeader
	Worker  string        `json:"worker"`
	Epoch   string        `json:"epoch"`
	Lease   string        `json:"lease"`
	Results []PointResult `json:"results"`
	Cache   *CacheStats   `json:"cache,omitempty"`
}

// ResultsResponse acknowledges a results upload.
type ResultsResponse struct {
	OK       bool `json:"ok"`
	Gone     bool `json:"gone,omitempty"`
	Draining bool `json:"draining,omitempty"`
}

// DeregisterRequest removes a worker from the fleet cleanly.
type DeregisterRequest struct {
	ProtoHeader
	Worker string `json:"worker"`
	Epoch  string `json:"epoch"`
}

// DeregisterResponse acknowledges a deregistration.
type DeregisterResponse struct {
	OK bool `json:"ok"`
}

// WorkerView is the health snapshot of one fleet member, served by
// GET /v1/cluster/workers.
type WorkerView struct {
	ID       string `json:"id"`
	State    string `json:"state"` // active | lost | evicted
	Epoch    string `json:"epoch"`
	Capacity int    `json:"capacity,omitempty"`
	// InflightLeases and InflightPoints describe outstanding work.
	InflightLeases int `json:"inflight_leases"`
	InflightPoints int `json:"inflight_points,omitempty"`
	// CompletedPoints, StolenLeases and FailedPoints are lifetime counts
	// for the worker ID (across re-registrations).
	CompletedPoints     int     `json:"completed_points"`
	StolenLeases        int     `json:"stolen_leases,omitempty"`
	FailedPoints        int     `json:"failed_points,omitempty"`
	ConsecutiveFailures int     `json:"consecutive_failures,omitempty"`
	LastHeartbeatAgoS   float64 `json:"last_heartbeat_ago_s"`
}

// WorkersResponse is the GET /v1/cluster/workers body.
type WorkersResponse struct {
	Workers []WorkerView `json:"workers"`
}

// CacheStats is a worker's cumulative cache-counter snapshot, piggybacked
// on heartbeats and results uploads. All counters are monotonic for one
// worker process; the coordinator sums the latest snapshot per live worker
// plus an accumulator of cleanly departed ones.
type CacheStats struct {
	// Hits counts runs answered without executing the engine: memory LRU,
	// single-flight dedup joins, and disk-tier loads.
	Hits uint64 `json:"hits"`
	// Misses counts actual engine executions.
	Misses uint64 `json:"misses"`
	// PeerFetches counts misses answered by the owning peer's cache.
	PeerFetches uint64 `json:"peer_fetches"`
	// PeerTimeouts counts owner fetches that failed or timed out, falling
	// back to local simulation.
	PeerTimeouts uint64 `json:"peer_timeouts"`
	// PeerServed counts peer-protocol lookups this worker answered with a
	// value; PeerStores counts replicated results accepted from peers.
	PeerServed uint64 `json:"peer_served,omitempty"`
	PeerStores uint64 `json:"peer_stores,omitempty"`
	// Entries is the current in-memory entry count (a gauge, not a counter).
	Entries int `json:"entries,omitempty"`
}

// Add accumulates another snapshot into s.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.PeerFetches += o.PeerFetches
	s.PeerTimeouts += o.PeerTimeouts
	s.PeerServed += o.PeerServed
	s.PeerStores += o.PeerStores
	s.Entries += o.Entries
}

// CacheWorkerView is one worker's slice of the fleet cache state, served
// by GET /v1/cluster/cache.
type CacheWorkerView struct {
	ID      string     `json:"id"`
	State   string     `json:"state"` // active | lost | evicted
	PeerURL string     `json:"peer_url,omitempty"`
	Shards  int        `json:"shards"` // slots owned in the current map
	Suspect bool       `json:"suspect,omitempty"`
	Cache   CacheStats `json:"cache"`
}

// CacheStateResponse is the GET /v1/cluster/cache body: the live shard map
// plus per-worker and fleet-aggregate cache counters. Totals include
// cleanly departed workers, so fleet counters stay monotonic across
// graceful churn (a crash without deregister loses that worker's deltas
// since its last heartbeat).
type CacheStateResponse struct {
	Map     *ShardMap         `json:"map,omitempty"`
	Workers []CacheWorkerView `json:"workers"`
	Totals  CacheStats        `json:"totals"`
}

// PeerGetRequest asks the owning worker for a cached simulation result.
type PeerGetRequest struct {
	ProtoHeader
	// Key is the simcache fingerprint (64 hex chars).
	Key string `json:"key"`
	// Engine guards against serving a result computed by a different
	// engine for the same design (mirrors the disk tier's check).
	Engine string `json:"engine"`
	// Generation is the requester's shard-map generation, echoed so the
	// owner can flag staleness.
	Generation uint64 `json:"generation,omitempty"`
}

// PeerGetResponse answers a peer lookup. Found=false with OK status means
// the owner simply doesn't have the key yet — the requester simulates
// locally and replicates the result back.
type PeerGetResponse struct {
	Found bool `json:"found"`
	// Result is the cached simulation result when Found.
	Result *sim.Result `json:"result,omitempty"`
	// Stale reports that the requester's generation is behind the one this
	// owner holds; purely diagnostic (content-addressing keeps any answer
	// valid).
	Stale bool `json:"stale,omitempty"`
}

// PeerPutRequest replicates a freshly simulated result to the key's owner,
// so the next fleet-wide repeat is a peer hit no matter which worker
// simulated it first.
type PeerPutRequest struct {
	ProtoHeader
	Key    string      `json:"key"`
	Engine string      `json:"engine"`
	Result *sim.Result `json:"result"`
}

// PeerPutResponse acknowledges a replication push.
type PeerPutResponse struct {
	OK bool `json:"ok"`
}

// WorkerLostError reports that a worker holding leased design points
// dropped off the fleet (heartbeat timeout, abrupt connection loss, or a
// superseding re-registration). It is transient: the lost points are
// re-enqueued for the surviving workers, so the build retries exactly like
// it would after a transient per-run fault. It surfaces as a build error
// only when a point's re-enqueue budget is exhausted.
type WorkerLostError struct {
	Worker string
	Reason string
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("cluster: worker %s lost (%s)", e.Worker, e.Reason)
}

// Transient marks worker loss as retryable for core's typed-error
// semantics (core.IsTransient).
func (e *WorkerLostError) Transient() bool { return true }

// ErrDraining fails in-flight fleet builds when the coordinator shuts
// down; internal/serve classifies it as a canceled job.
var ErrDraining = errors.New("cluster: coordinator draining")

// ErrNoWorkers rejects a fleet build when no live workers are registered.
var ErrNoWorkers = errors.New("cluster: no live workers registered")

// ErrKilled is returned by Worker.Run after a chaos kill (Worker.Kill or
// the fault injector's Kill mode) took the worker down mid-lease.
var ErrKilled = errors.New("cluster: worker killed")

// ProblemFactory instantiates the design problem a worker simulates;
// cmd/simnode uses core.StandardProblem, tests substitute faster engines.
// It must agree with the coordinator's problem for results to be
// meaningful — the lease carries (excite, horizon) so both sides build the
// identical problem.
type ProblemFactory func(excite, horizon float64) *core.Problem
