// Package cluster is the distributed build fabric: it shards the design
// points of one DoE build across a fleet of simnode workers over a small
// pull-based HTTP/JSON protocol.
//
// The coordinator (embedded in ehdoed, see internal/serve) owns the only
// authoritative state: which workers exist, which points each outstanding
// lease covers, and which points already produced a row. Workers are
// stateless pullers — they register, heartbeat, lease a batch of coded
// design points, run them through their local simcache.Runner chain, and
// stream the results back. Every fault the fabric adds on top of a local
// run maps onto the repo's existing typed-error semantics:
//
//   - A worker that stops heartbeating is declared lost; its leased points
//     are re-enqueued under a *WorkerLostError (Transient() == true), so
//     whole-worker loss retries exactly like a transient per-run fault.
//   - A lease that outlives the lease timeout is stolen: its unfinished
//     points are re-enqueued for other workers while late results stay
//     acceptable — the first result for a point wins, so stealing can only
//     add capacity, never change values.
//   - A worker whose reported failures hit the consecutive-failure limit
//     is circuit-broken (evicted); it may rejoin by re-registering, which
//     issues a fresh epoch.
//   - Re-registration under the same worker ID (a restarted or partitioned
//     twin — the split-brain case) supersedes the old incarnation: the old
//     epoch's leases are re-enqueued and its requests answer Gone, so at
//     most one incarnation can return results.
//
// Determinism: the simulator is deterministic and design points are
// distributed verbatim (encoding/json round-trips float64 exactly), so a
// fleet build assembles a Dataset bit-identical to a local
// RunDesignContext run — regardless of worker count, lease interleaving,
// or mid-build worker loss.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Protocol paths served by Coordinator.Handler and internal/serve, and
// dialed by Client.
const (
	PathRegister   = "/v1/cluster/register"
	PathHeartbeat  = "/v1/cluster/heartbeat"
	PathLease      = "/v1/cluster/lease"
	PathResults    = "/v1/cluster/results"
	PathDeregister = "/v1/cluster/deregister"
	PathWorkers    = "/v1/cluster/workers"
)

// RegisterRequest announces a worker to the coordinator. Re-registering an
// ID that is already known supersedes the previous incarnation (its leases
// are re-enqueued and its epoch invalidated).
type RegisterRequest struct {
	// Worker is the fleet-unique worker ID.
	Worker string `json:"worker"`
	// Capacity is the worker's concurrent point capacity (informational).
	Capacity int `json:"capacity,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// Epoch identifies this incarnation of the worker; every subsequent
	// request must echo it. A Gone answer means the epoch was superseded
	// or evicted — re-register to obtain a fresh one.
	Epoch string `json:"epoch"`
	// HeartbeatS is the heartbeat interval the coordinator expects (s).
	HeartbeatS float64 `json:"heartbeat_s"`
	// PollS is the suggested idle lease-poll interval (s).
	PollS float64 `json:"poll_s"`
	// Draining reports that the coordinator is shutting down.
	Draining bool `json:"draining,omitempty"`
}

// HeartbeatRequest keeps a worker's incarnation alive.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Epoch  string `json:"epoch"`
}

// HeartbeatResponse answers a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
	// Gone means this (worker, epoch) is no longer valid: superseded by a
	// re-registration, evicted, or expired. The worker must re-register.
	Gone bool `json:"gone,omitempty"`
	// Draining asks the worker to deregister and exit.
	Draining bool `json:"draining,omitempty"`
}

// LeaseRequest asks for a batch of design points to run.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Epoch  string `json:"epoch"`
	// Max caps the number of points in the granted lease; the coordinator
	// clamps it to its own batch limit. <=0 means the coordinator's limit.
	Max int `json:"max,omitempty"`
}

// LeaseResponse grants at most one lease; a nil Lease means no work is
// available right now.
type LeaseResponse struct {
	Lease    *LeaseView `json:"lease,omitempty"`
	Gone     bool       `json:"gone,omitempty"`
	Draining bool       `json:"draining,omitempty"`
}

// PointAssignment is one design point of a lease, in coded units.
type PointAssignment struct {
	Index int       `json:"index"`
	Coded []float64 `json:"coded"`
}

// LeaseView is the wire form of one work lease: the problem parameters a
// worker needs to instantiate the identical Problem locally, plus the
// assigned points. Trace is the submitting build's trace ID, so obs log
// lines thread coordinator → worker → simulation run.
type LeaseView struct {
	ID        string            `json:"id"`
	Job       string            `json:"job"`
	Trace     string            `json:"trace,omitempty"`
	Excite    float64           `json:"excite"`
	Horizon   float64           `json:"horizon_s"`
	Responses []string          `json:"responses"`
	Points    []PointAssignment `json:"points"`
}

// PointResult is the outcome of one leased point.
type PointResult struct {
	Index int `json:"index"`
	// Values maps response IDs to simulated values; nil when Error is set.
	Values map[string]float64 `json:"values,omitempty"`
	// Error is the worker-side failure, already past the worker's local
	// retry budget. Transient reports whether it was a retryable class
	// (core.IsTransient), which decides whether the coordinator re-enqueues
	// the point.
	Error     string `json:"error,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	// ElapsedNs, Retries and Panics feed the Dataset's SimWork and
	// fault-recovery stats.
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`
	Retries   int   `json:"retries,omitempty"`
	Panics    int   `json:"panics,omitempty"`
}

// ResultsRequest streams a finished lease's results back.
type ResultsRequest struct {
	Worker  string        `json:"worker"`
	Epoch   string        `json:"epoch"`
	Lease   string        `json:"lease"`
	Results []PointResult `json:"results"`
}

// ResultsResponse acknowledges a results upload.
type ResultsResponse struct {
	OK       bool `json:"ok"`
	Gone     bool `json:"gone,omitempty"`
	Draining bool `json:"draining,omitempty"`
}

// DeregisterRequest removes a worker from the fleet cleanly.
type DeregisterRequest struct {
	Worker string `json:"worker"`
	Epoch  string `json:"epoch"`
}

// DeregisterResponse acknowledges a deregistration.
type DeregisterResponse struct {
	OK bool `json:"ok"`
}

// WorkerView is the health snapshot of one fleet member, served by
// GET /v1/cluster/workers.
type WorkerView struct {
	ID       string `json:"id"`
	State    string `json:"state"` // active | lost | evicted
	Epoch    string `json:"epoch"`
	Capacity int    `json:"capacity,omitempty"`
	// InflightLeases and InflightPoints describe outstanding work.
	InflightLeases int `json:"inflight_leases"`
	InflightPoints int `json:"inflight_points,omitempty"`
	// CompletedPoints, StolenLeases and FailedPoints are lifetime counts
	// for the worker ID (across re-registrations).
	CompletedPoints     int     `json:"completed_points"`
	StolenLeases        int     `json:"stolen_leases,omitempty"`
	FailedPoints        int     `json:"failed_points,omitempty"`
	ConsecutiveFailures int     `json:"consecutive_failures,omitempty"`
	LastHeartbeatAgoS   float64 `json:"last_heartbeat_ago_s"`
}

// WorkersResponse is the GET /v1/cluster/workers body.
type WorkersResponse struct {
	Workers []WorkerView `json:"workers"`
}

// WorkerLostError reports that a worker holding leased design points
// dropped off the fleet (heartbeat timeout, abrupt connection loss, or a
// superseding re-registration). It is transient: the lost points are
// re-enqueued for the surviving workers, so the build retries exactly like
// it would after a transient per-run fault. It surfaces as a build error
// only when a point's re-enqueue budget is exhausted.
type WorkerLostError struct {
	Worker string
	Reason string
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("cluster: worker %s lost (%s)", e.Worker, e.Reason)
}

// Transient marks worker loss as retryable for core's typed-error
// semantics (core.IsTransient).
func (e *WorkerLostError) Transient() bool { return true }

// ErrDraining fails in-flight fleet builds when the coordinator shuts
// down; internal/serve classifies it as a canceled job.
var ErrDraining = errors.New("cluster: coordinator draining")

// ErrNoWorkers rejects a fleet build when no live workers are registered.
var ErrNoWorkers = errors.New("cluster: no live workers registered")

// ErrKilled is returned by Worker.Run after a chaos kill (Worker.Kill or
// the fault injector's Kill mode) took the worker down mid-lease.
var ErrKilled = errors.New("cluster: worker killed")

// ProblemFactory instantiates the design problem a worker simulates;
// cmd/simnode uses core.StandardProblem, tests substitute faster engines.
// It must agree with the coordinator's problem for results to be
// meaningful — the lease carries (excite, horizon) so both sides build the
// identical problem.
type ProblemFactory func(excite, horizon float64) *core.Problem
