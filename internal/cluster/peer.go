package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/apiclient"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// defaultPeerTimeout bounds one peer fetch or replication push. Peer
// round-trips trade against re-simulating locally, so the bound is tight:
// a slow owner costs one redundant simulation, never a stalled build.
const defaultPeerTimeout = 2 * time.Second

// peerCache is a worker's view of the fleet's sharded cache tier. It plays
// both sides of the peer protocol:
//
//   - As simcache.Remote it routes misses to the owning peer (Fetch) and
//     replicates fresh results to the owner (Store), using the latest
//     coordinator-published shard map.
//   - As an http.Handler it serves this worker's owned key ranges to the
//     rest of the fleet out of the worker's own simcache.
//
// Ownership is a routing hint only (see ShardMap); every decision here
// fails open to local simulation.
type peerCache struct {
	owner   string // this worker's fleet ID
	cache   *simcache.Cache
	timeout time.Duration
	api     *apiclient.Client
	log     *slog.Logger

	smap atomic.Pointer[ShardMap]

	// Counters feeding CacheStats; see that type for semantics.
	fetches  atomic.Uint64
	timeouts atomic.Uint64
	served   atomic.Uint64
	stores   atomic.Uint64
}

func newPeerCache(owner string, cache *simcache.Cache, timeout time.Duration, hc *http.Client, lg *slog.Logger) *peerCache {
	if timeout <= 0 {
		timeout = defaultPeerTimeout
	}
	return &peerCache{
		owner: owner,
		cache: cache,
		// One attempt per peer call: on failure we simulate locally, which
		// is both the fallback and the retry.
		api:     apiclient.New("", apiclient.Options{HTTP: hc, MaxAttempts: 1}),
		timeout: timeout,
		log:     lg,
	}
}

// adopt installs a shard map if it is newer than the one held. Maps are
// immutable, so a pointer swap is the whole update.
func (p *peerCache) adopt(m *ShardMap) {
	if m == nil {
		return
	}
	for {
		cur := p.smap.Load()
		if cur != nil && cur.Generation >= m.Generation {
			return
		}
		if p.smap.CompareAndSwap(cur, m) {
			p.log.Debug("shard map adopted", "generation", m.Generation, "members", len(m.Peers))
			return
		}
	}
}

func (p *peerCache) generation() uint64 {
	if m := p.smap.Load(); m != nil {
		return m.Generation
	}
	return 0
}

// route resolves a key to a remote owner's peer URL; "" means the key is
// unowned or owned by this worker (either way: handle locally).
func (p *peerCache) route(key string) string {
	id, peerURL := p.smap.Load().Owner(key)
	if id == "" || id == p.owner {
		return ""
	}
	return peerURL
}

// Fetch implements simcache.Remote: ask the key's owner for a cached
// result. Any failure — owner down, timeout, bad answer — counts a peer
// timeout and falls back to local simulation; a clean not-found is the
// normal first-touch path and counts nothing.
func (p *peerCache) Fetch(ctx context.Context, key, engine string) (*sim.Result, bool) {
	peerURL := p.route(key)
	if peerURL == "" {
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req := PeerGetRequest{
		ProtoHeader: ProtoHeader{ProtoVersion: ProtoVersion},
		Key:         key,
		Engine:      engine,
		Generation:  p.generation(),
	}
	var resp PeerGetResponse
	if err := p.api.Post(fctx, peerURL+PathPeerGet, req, &resp); err != nil {
		p.timeouts.Add(1)
		p.log.Debug("peer fetch failed, simulating locally",
			"key", key[:12], "peer", peerURL, "err", err.Error())
		return nil, false
	}
	if !resp.Found || resp.Result == nil {
		return nil, false
	}
	p.fetches.Add(1)
	return resp.Result, true
}

// Store implements simcache.Remote: replicate a freshly simulated result
// to the key's owner. Called synchronously from the simcache fill path —
// by the time the result reaches the coordinator, the owner can serve it —
// but best-effort: a failed push costs the fleet one redundant simulation
// later, never this run. The push survives the run's own cancellation
// (the work is done; losing the replica would waste it) within the peer
// timeout bound.
func (p *peerCache) Store(ctx context.Context, key, engine string, res *sim.Result) {
	peerURL := p.route(key)
	if peerURL == "" {
		return
	}
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), p.timeout)
	defer cancel()
	req := PeerPutRequest{
		ProtoHeader: ProtoHeader{ProtoVersion: ProtoVersion},
		Key:         key,
		Engine:      engine,
		Result:      res,
	}
	if err := p.api.Post(sctx, peerURL+PathPeerPut, req, nil); err != nil {
		p.log.Debug("peer store failed", "key", key[:12], "peer", peerURL, "err", err.Error())
	}
}

// stats snapshots this worker's cache counters in the wire shape. Hits
// folds every local answered-without-simulating tier (memory, dedup,
// disk); Misses counts engine executions only, so fleet-wide
// exactly-once shows up as misses == unique points.
func (p *peerCache) stats() *CacheStats {
	s := p.cache.Stats()
	return &CacheStats{
		Hits:         s.Hits + s.DedupHits + s.DiskHits,
		Misses:       s.Misses,
		PeerFetches:  p.fetches.Load(),
		PeerTimeouts: p.timeouts.Load(),
		PeerServed:   p.served.Load(),
		PeerStores:   p.stores.Load(),
		Entries:      s.Entries,
	}
}

// handler serves the peer protocol for this worker's owned ranges.
func (p *peerCache) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathPeerGet, func(w http.ResponseWriter, r *http.Request) {
		var req PeerGetRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		if !validCacheKey(req.Key) {
			httpError(w, http.StatusBadRequest, "invalid_request",
				fmt.Errorf("cluster: malformed cache key"))
			return
		}
		resp := PeerGetResponse{Stale: req.Generation < p.generation()}
		if res, ok := p.cache.Lookup(r.Context(), req.Key, req.Engine); ok {
			resp.Found, resp.Result = true, res
			p.served.Add(1)
		}
		encodeBody(w, resp)
	})
	mux.HandleFunc("POST "+PathPeerPut, func(w http.ResponseWriter, r *http.Request) {
		var req PeerPutRequest
		if !decodeBody(w, r, &req) || !checkProto(w, req) {
			return
		}
		if !validCacheKey(req.Key) || req.Result == nil {
			httpError(w, http.StatusBadRequest, "invalid_request",
				fmt.Errorf("cluster: malformed replication push"))
			return
		}
		p.cache.Insert(req.Key, req.Engine, req.Result)
		p.stores.Add(1)
		encodeBody(w, PeerPutResponse{OK: true})
	})
	return mux
}

// serve starts the peer listener on addr and returns the advertised base
// URL (advertise overrides the derived one — for NAT'd or named hosts).
// The returned stop func closes the listener and in-flight peer requests.
func (p *peerCache) serve(addr, advertise string) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: peer listener on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: p.handler()}
	go srv.Serve(ln)
	url = advertise
	if url == "" {
		url = "http://" + ln.Addr().String()
	}
	p.log.Info("peer cache serving", "addr", ln.Addr().String(), "url", url)
	return url, func() { srv.Close() }, nil
}
