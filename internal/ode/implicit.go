package ode

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// ImplicitConfig controls the implicit trapezoidal integrator.
type ImplicitConfig struct {
	NewtonTol   float64 // Newton convergence tolerance on the update norm (default 1e-10)
	MaxNewton   int     // maximum Newton iterations per step (default 25)
	JacEps      float64 // finite-difference perturbation (default 1e-7)
	FreshJacPer int     // rebuild the Jacobian every k Newton iterations (default 1 = every iteration, the classical full Newton)
}

func (c *ImplicitConfig) defaults() {
	if c.NewtonTol <= 0 {
		c.NewtonTol = 1e-10
	}
	if c.MaxNewton <= 0 {
		c.MaxNewton = 25
	}
	if c.JacEps <= 0 {
		c.JacEps = 1e-7
	}
	if c.FreshJacPer <= 0 {
		c.FreshJacPer = 1
	}
}

// ImplicitTrapezoidal integrates sys from t0 to t1 with constant step h
// using the trapezoidal rule
//
//	y_{k+1} = y_k + h/2·(f(t_k, y_k) + f(t_{k+1}, y_{k+1}))
//
// solving the per-step nonlinear equation by damped Newton–Raphson with a
// finite-difference Jacobian. This is the reference "analogue simulation"
// engine: A-stable and accurate, but each step costs a Jacobian build and
// an LU solve — exactly the cost profile the paper's DoE flow works around.
func ImplicitTrapezoidal(sys System, t0, t1, h float64, y0 []float64, cfg ImplicitConfig, observe func(t float64, y []float64)) ([]float64, Stats, error) {
	if h <= 0 || t1 < t0 {
		return nil, Stats{}, fmt.Errorf("ode: bad interval t0=%g t1=%g h=%g", t0, t1, h)
	}
	cfg.defaults()
	n := sys.Dim()
	if len(y0) != n {
		return nil, Stats{}, fmt.Errorf("ode: state length %d, want %d", len(y0), n)
	}
	y := make([]float64, n)
	copy(y, y0)
	fk := make([]float64, n)  // f(t_k, y_k)
	fk1 := make([]float64, n) // f(t_{k+1}, trial)
	res := make([]float64, n) // Newton residual
	trial := make([]float64, n)
	pert := make([]float64, n)
	fpert := make([]float64, n)

	var st Stats
	if observe != nil {
		observe(t0, y)
	}
	t := t0
	for t < t1 {
		hh := h
		if t+hh > t1 {
			hh = t1 - t
		}
		sys.Derivatives(t, y, fk)
		st.FuncEvals++
		// Predictor: forward Euler.
		for i := range trial {
			trial[i] = y[i] + hh*fk[i]
		}
		var jacLU *la.LU
		converged := false
		for it := 0; it < cfg.MaxNewton; it++ {
			st.NewtonIters++
			sys.Derivatives(t+hh, trial, fk1)
			st.FuncEvals++
			// Residual g(x) = x − y_k − h/2·(f_k + f(t+h, x)).
			var rnorm float64
			for i := range res {
				res[i] = trial[i] - y[i] - hh/2*(fk[i]+fk1[i])
				if a := math.Abs(res[i]); a > rnorm {
					rnorm = a
				}
			}
			if rnorm <= cfg.NewtonTol*(1+vecMaxAbs(trial)) {
				converged = true
				break
			}
			if jacLU == nil || it%cfg.FreshJacPer == 0 {
				// Build J = I − h/2·∂f/∂y by finite differences.
				jac := la.NewMatrix(n, n)
				st.JacEvals++
				for j := 0; j < n; j++ {
					copy(pert, trial)
					dx := cfg.JacEps * (1 + math.Abs(trial[j]))
					pert[j] += dx
					sys.Derivatives(t+hh, pert, fpert)
					st.FuncEvals++
					for i := 0; i < n; i++ {
						jac.Set(i, j, -hh/2*(fpert[i]-fk1[i])/dx)
					}
					jac.Add(j, j, 1)
				}
				lu, err := la.FactorLU(jac)
				if err != nil {
					return y, st, fmt.Errorf("ode: singular Newton Jacobian at t=%g: %w", t, err)
				}
				jacLU = lu
			}
			dx, err := jacLU.Solve(res)
			if err != nil {
				return y, st, fmt.Errorf("ode: Newton solve failed at t=%g: %w", t, err)
			}
			for i := range trial {
				trial[i] -= dx[i]
			}
		}
		if !converged {
			return y, st, fmt.Errorf("%w: Newton did not converge at t=%g", ErrStepFailed, t)
		}
		copy(y, trial)
		t += hh
		st.Steps++
		if observe != nil {
			observe(t, y)
		}
	}
	return y, st, nil
}

func vecMaxAbs(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
