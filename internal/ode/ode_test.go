package ode

import (
	"math"
	"testing"
)

// decay is y' = −y with solution y(t) = y0·e^{−t}.
var decay = Func{N: 1, F: func(t float64, y, d []float64) { d[0] = -y[0] }}

// oscillator is the harmonic oscillator x” = −x as a first-order system;
// energy x² + v² is conserved.
var oscillator = Func{N: 2, F: func(t float64, y, d []float64) {
	d[0] = y[1]
	d[1] = -y[0]
}}

// stiffSys has widely separated eigenvalues (−1, −1000); explicit methods
// need tiny steps while the implicit trapezoidal rule stays stable.
var stiffSys = Func{N: 2, F: func(t float64, y, d []float64) {
	d[0] = -y[0]
	d[1] = -1000 * y[1]
}}

func TestEulerConvergesFirstOrder(t *testing.T) {
	// Halving h should roughly halve the error.
	errAt := func(h float64) float64 {
		y, _, err := FixedStep(decay, 0, 1, h, []float64{1}, EulerStep, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-1))
	}
	e1, e2 := errAt(1e-3), errAt(5e-4)
	ratio := e1 / e2
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("Euler error ratio = %v, want ≈2 (first order)", ratio)
	}
}

func TestRK4Accuracy(t *testing.T) {
	y, st, err := FixedStep(decay, 0, 2, 1e-2, []float64{1}, RK4Step, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := y[0], math.Exp(-2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("y(2) = %v, want %v", got, want)
	}
	if st.Steps != 200 {
		t.Fatalf("steps = %d, want 200", st.Steps)
	}
	if st.FuncEvals != 800 {
		t.Fatalf("fevals = %d, want 800", st.FuncEvals)
	}
}

func TestRK4ConvergesFourthOrder(t *testing.T) {
	errAt := func(h float64) float64 {
		y, _, err := FixedStep(decay, 0, 1, h, []float64{1}, RK4Step, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-1))
	}
	e1, e2 := errAt(0.1), errAt(0.05)
	order := math.Log2(e1 / e2)
	if order < 3.7 || order > 4.3 {
		t.Fatalf("RK4 observed order = %v, want ≈4", order)
	}
}

func TestFixedStepObserver(t *testing.T) {
	var times []float64
	_, _, err := FixedStep(decay, 0, 1, 0.25, []float64{1}, RK4Step, func(tt float64, y []float64) {
		times = append(times, tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 || times[0] != 0 || times[4] != 1 {
		t.Fatalf("observer times = %v", times)
	}
}

func TestFixedStepFinalPartialStep(t *testing.T) {
	// 0→1 with h=0.3 needs a final partial step; end time must be exact.
	var last float64
	_, _, err := FixedStep(decay, 0, 1, 0.3, []float64{1}, RK4Step, func(tt float64, y []float64) { last = tt })
	if err != nil {
		t.Fatal(err)
	}
	if last != 1 {
		t.Fatalf("final time = %v, want 1", last)
	}
}

func TestFixedStepBadArgs(t *testing.T) {
	if _, _, err := FixedStep(decay, 0, 1, -1, []float64{1}, RK4Step, nil); err == nil {
		t.Fatal("negative h must error")
	}
	if _, _, err := FixedStep(decay, 1, 0, 0.1, []float64{1}, RK4Step, nil); err == nil {
		t.Fatal("t1 < t0 must error")
	}
	if _, _, err := FixedStep(decay, 0, 1, 0.1, []float64{1, 2}, RK4Step, nil); err == nil {
		t.Fatal("wrong state length must error")
	}
}

func TestFixedStepDetectsDivergence(t *testing.T) {
	blowup := Func{N: 1, F: func(t float64, y, d []float64) { d[0] = y[0] * y[0] }}
	_, _, err := FixedStep(blowup, 0, 10, 0.5, []float64{10}, EulerStep, nil)
	if err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestRK4EnergyConservation(t *testing.T) {
	y, _, err := FixedStep(oscillator, 0, 2*math.Pi*10, 1e-3, []float64{1, 0}, RK4Step, nil)
	if err != nil {
		t.Fatal(err)
	}
	energy := y[0]*y[0] + y[1]*y[1]
	if math.Abs(energy-1) > 1e-8 {
		t.Fatalf("energy drifted to %v after 10 periods", energy)
	}
}

func TestAdaptiveDecay(t *testing.T) {
	y, st, err := Adaptive(decay, 0, 5, []float64{1}, AdaptiveConfig{RelTol: 1e-9, AbsTol: 1e-12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := y[0], math.Exp(-5); math.Abs(got-want) > 1e-8 {
		t.Fatalf("y(5) = %v, want %v", got, want)
	}
	if st.Steps == 0 || st.FuncEvals < 6*st.Steps {
		t.Fatalf("suspicious stats: %+v", st)
	}
}

func TestAdaptiveOscillatorPhase(t *testing.T) {
	// After one full period the state must return to (1, 0).
	y, _, err := Adaptive(oscillator, 0, 2*math.Pi, []float64{1, 0}, AdaptiveConfig{RelTol: 1e-10, AbsTol: 1e-12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-7 || math.Abs(y[1]) > 1e-7 {
		t.Fatalf("after one period y = %v, want [1 0]", y)
	}
}

func TestAdaptiveUsesFewerStepsThanFixedForSmoothProblem(t *testing.T) {
	_, stA, err := Adaptive(decay, 0, 10, []float64{1}, AdaptiveConfig{RelTol: 1e-6, AbsTol: 1e-9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stF, err := FixedStep(decay, 0, 10, 1e-4, []float64{1}, RK4Step, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stA.FuncEvals >= stF.FuncEvals {
		t.Fatalf("adaptive (%d fevals) should beat fixed tiny-step (%d)", stA.FuncEvals, stF.FuncEvals)
	}
}

func TestAdaptiveRejectsAndRecovers(t *testing.T) {
	// A kick at t=1 forces step rejections but integration must finish.
	kicked := Func{N: 1, F: func(t float64, y, d []float64) {
		d[0] = -y[0]
		if t > 1 && t < 1.001 {
			d[0] += 1e5
		}
	}}
	_, st, err := Adaptive(kicked, 0, 2, []float64{1}, AdaptiveConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Log("no rejections observed (acceptable but unexpected)")
	}
}

func TestAdaptiveBadInterval(t *testing.T) {
	if _, _, err := Adaptive(decay, 1, 0, []float64{1}, AdaptiveConfig{}, nil); err == nil {
		t.Fatal("t1 < t0 must error")
	}
	if _, _, err := Adaptive(decay, 0, 1, []float64{1, 2}, AdaptiveConfig{}, nil); err == nil {
		t.Fatal("wrong state length must error")
	}
}

func TestImplicitTrapezoidalAccuracy(t *testing.T) {
	y, st, err := ImplicitTrapezoidal(decay, 0, 1, 1e-3, []float64{1}, ImplicitConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := y[0], math.Exp(-1); math.Abs(got-want) > 1e-6 {
		t.Fatalf("y(1) = %v, want %v", got, want)
	}
	if st.NewtonIters == 0 || st.JacEvals == 0 {
		t.Fatalf("implicit stats incomplete: %+v", st)
	}
}

func TestImplicitStableOnStiffSystem(t *testing.T) {
	// h=0.01 is far beyond the explicit-Euler stability bound (2/1000) for
	// the fast mode; trapezoidal must remain stable and accurate for the
	// slow mode.
	y, _, err := ImplicitTrapezoidal(stiffSys, 0, 1, 0.01, []float64{1, 1}, ImplicitConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Exp(-1)) > 1e-4 {
		t.Fatalf("slow mode y0 = %v, want %v", y[0], math.Exp(-1))
	}
	if math.Abs(y[1]) > 1e-3 {
		t.Fatalf("fast mode must have decayed, got %v", y[1])
	}
	// Explicit Euler at the same step must blow up — this is the contrast
	// that motivates the implicit reference engine.
	yE, _, errE := FixedStep(stiffSys, 0, 1, 0.01, []float64{1, 1}, EulerStep, nil)
	if errE == nil && math.Abs(yE[1]) < 1 {
		t.Fatal("explicit Euler unexpectedly stable on stiff system at h=0.01")
	}
}

func TestImplicitTrapezoidalSecondOrder(t *testing.T) {
	errAt := func(h float64) float64 {
		y, _, err := ImplicitTrapezoidal(decay, 0, 1, h, []float64{1}, ImplicitConfig{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-1))
	}
	e1, e2 := errAt(0.02), errAt(0.01)
	order := math.Log2(e1 / e2)
	if order < 1.7 || order > 2.3 {
		t.Fatalf("trapezoidal observed order = %v, want ≈2", order)
	}
}

func TestImplicitNonlinearSystem(t *testing.T) {
	// Logistic growth y' = y(1−y), y(0)=0.1; closed form known.
	logistic := Func{N: 1, F: func(t float64, y, d []float64) { d[0] = y[0] * (1 - y[0]) }}
	y, _, err := ImplicitTrapezoidal(logistic, 0, 3, 1e-3, []float64{0.1}, ImplicitConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 * math.Exp(3) / (1 - 0.1 + 0.1*math.Exp(3))
	if math.Abs(y[0]-want) > 1e-6 {
		t.Fatalf("logistic y(3) = %v, want %v", y[0], want)
	}
}

func TestImplicitBadArgs(t *testing.T) {
	if _, _, err := ImplicitTrapezoidal(decay, 0, 1, 0, []float64{1}, ImplicitConfig{}, nil); err == nil {
		t.Fatal("zero h must error")
	}
	if _, _, err := ImplicitTrapezoidal(decay, 0, 1, 0.1, []float64{1, 2}, ImplicitConfig{}, nil); err == nil {
		t.Fatal("wrong state length must error")
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Steps: 1, Rejected: 2, FuncEvals: 3, NewtonIters: 4, JacEvals: 5}
	b := Stats{Steps: 10, Rejected: 20, FuncEvals: 30, NewtonIters: 40, JacEvals: 50}
	a.Add(b)
	if a.Steps != 11 || a.Rejected != 22 || a.FuncEvals != 33 || a.NewtonIters != 44 || a.JacEvals != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}
