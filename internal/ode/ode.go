// Package ode provides the initial-value-problem integrators used by the
// whole-node transient simulator: a fixed-step fourth-order Runge–Kutta
// method, an adaptive Cash–Karp RK45 method, and an implicit trapezoidal
// method whose per-step nonlinear system is solved by Newton–Raphson
// iteration with a finite-difference Jacobian.
//
// The implicit trapezoidal integrator is the "traditional analogue
// simulation" path the paper identifies as the CPU-time bottleneck; the
// explicit linearized state-space engine in internal/sim is the accelerated
// alternative (companion paper [4]).
package ode

import (
	"errors"
	"fmt"
	"math"
)

// System is a first-order ODE system y' = f(t, y).
type System interface {
	// Dim returns the state dimension.
	Dim() int
	// Derivatives writes f(t, y) into dydt. len(y) == len(dydt) == Dim().
	Derivatives(t float64, y, dydt []float64)
}

// Func adapts a plain function to the System interface.
type Func struct {
	N int
	F func(t float64, y, dydt []float64)
}

// Dim returns the state dimension.
func (f Func) Dim() int { return f.N }

// Derivatives evaluates the wrapped function.
func (f Func) Derivatives(t float64, y, dydt []float64) { f.F(t, y, dydt) }

// ErrStepFailed is returned when an adaptive or implicit step cannot reach
// its tolerance even at the minimum step size.
var ErrStepFailed = errors.New("ode: step failed to converge")

// Stats accumulates integrator work counters so the benchmark harness can
// report simulation cost in solver-independent units.
type Stats struct {
	Steps       int // accepted steps
	Rejected    int // rejected trial steps (adaptive only)
	FuncEvals   int // right-hand-side evaluations
	NewtonIters int // Newton iterations (implicit only)
	JacEvals    int // Jacobian evaluations (implicit only)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Steps += other.Steps
	s.Rejected += other.Rejected
	s.FuncEvals += other.FuncEvals
	s.NewtonIters += other.NewtonIters
	s.JacEvals += other.JacEvals
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("steps=%d rejected=%d fevals=%d newton=%d jac=%d",
		s.Steps, s.Rejected, s.FuncEvals, s.NewtonIters, s.JacEvals)
}

// StepFunc advances the state y from t by h in place and returns the number
// of function evaluations spent.
type StepFunc func(sys System, t, h float64, y, scratch []float64) int

// EulerStep performs one explicit (forward) Euler step.
func EulerStep(sys System, t, h float64, y, scratch []float64) int {
	n := sys.Dim()
	d := scratch[:n]
	sys.Derivatives(t, y, d)
	for i := range y {
		y[i] += h * d[i]
	}
	return 1
}

// RK4Step performs one classical fourth-order Runge–Kutta step.
func RK4Step(sys System, t, h float64, y, scratch []float64) int {
	n := sys.Dim()
	k1 := scratch[0*n : 1*n]
	k2 := scratch[1*n : 2*n]
	k3 := scratch[2*n : 3*n]
	k4 := scratch[3*n : 4*n]
	tmp := scratch[4*n : 5*n]

	sys.Derivatives(t, y, k1)
	for i := range y {
		tmp[i] = y[i] + 0.5*h*k1[i]
	}
	sys.Derivatives(t+0.5*h, tmp, k2)
	for i := range y {
		tmp[i] = y[i] + 0.5*h*k2[i]
	}
	sys.Derivatives(t+0.5*h, tmp, k3)
	for i := range y {
		tmp[i] = y[i] + h*k3[i]
	}
	sys.Derivatives(t+h, tmp, k4)
	for i := range y {
		y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
	return 4
}

// ScratchLen returns the scratch-buffer length required by the fixed-step
// methods for an n-dimensional system.
func ScratchLen(n int) int { return 5 * n }

// FixedStep integrates sys from t0 to t1 with constant step h using step
// (EulerStep or RK4Step). If observe is non-nil it is called after every
// accepted step (and once at t0) with the current time and state; the state
// slice is reused, so observers must copy what they keep.
func FixedStep(sys System, t0, t1, h float64, y0 []float64, step StepFunc, observe func(t float64, y []float64)) ([]float64, Stats, error) {
	if h <= 0 || t1 < t0 {
		return nil, Stats{}, fmt.Errorf("ode: bad interval t0=%g t1=%g h=%g", t0, t1, h)
	}
	n := sys.Dim()
	if len(y0) != n {
		return nil, Stats{}, fmt.Errorf("ode: state length %d, want %d", len(y0), n)
	}
	y := make([]float64, n)
	copy(y, y0)
	scratch := make([]float64, ScratchLen(n))
	var st Stats
	if observe != nil {
		observe(t0, y)
	}
	t := t0
	for t < t1 {
		hh := h
		if t+hh > t1 {
			hh = t1 - t
		}
		st.FuncEvals += step(sys, t, hh, y, scratch)
		st.Steps++
		t += hh
		for _, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, st, fmt.Errorf("ode: state diverged at t=%g", t)
			}
		}
		if observe != nil {
			observe(t, y)
		}
	}
	return y, st, nil
}
