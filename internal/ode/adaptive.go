package ode

import (
	"fmt"
	"math"
)

// Cash–Karp embedded Runge–Kutta 4(5) coefficients.
var (
	ckA = [6]float64{0, 1. / 5, 3. / 10, 3. / 5, 1, 7. / 8}
	ckB = [6][5]float64{
		{},
		{1. / 5},
		{3. / 40, 9. / 40},
		{3. / 10, -9. / 10, 6. / 5},
		{-11. / 54, 5. / 2, -70. / 27, 35. / 27},
		{1631. / 55296, 175. / 512, 575. / 13824, 44275. / 110592, 253. / 4096},
	}
	ckC  = [6]float64{37. / 378, 0, 250. / 621, 125. / 594, 0, 512. / 1771}
	ckDC = [6]float64{
		37./378 - 2825./27648,
		0,
		250./621 - 18575./48384,
		125./594 - 13525./55296,
		-277. / 14336,
		512./1771 - 1./4,
	}
)

// AdaptiveConfig controls the adaptive RK45 integrator.
type AdaptiveConfig struct {
	RelTol  float64 // relative error tolerance (default 1e-6)
	AbsTol  float64 // absolute error tolerance (default 1e-9)
	H0      float64 // initial step (default (t1−t0)/100)
	HMin    float64 // minimum step before giving up (default 1e-12·(t1−t0))
	HMax    float64 // maximum step (default t1−t0)
	Safety  float64 // step-size safety factor (default 0.9)
	MaxStep int     // accepted-step budget (default 10 000 000)
}

func (c *AdaptiveConfig) defaults(span float64) {
	if c.RelTol <= 0 {
		c.RelTol = 1e-6
	}
	if c.AbsTol <= 0 {
		c.AbsTol = 1e-9
	}
	if c.H0 <= 0 {
		c.H0 = span / 100
	}
	if c.HMin <= 0 {
		c.HMin = 1e-12 * span
	}
	if c.HMax <= 0 {
		c.HMax = span
	}
	if c.Safety <= 0 {
		c.Safety = 0.9
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 10_000_000
	}
}

// Adaptive integrates sys from t0 to t1 with the Cash–Karp RK45 embedded
// pair and proportional step control. observe, if non-nil, is called after
// each accepted step (state slice reused).
func Adaptive(sys System, t0, t1 float64, y0 []float64, cfg AdaptiveConfig, observe func(t float64, y []float64)) ([]float64, Stats, error) {
	if t1 < t0 {
		return nil, Stats{}, fmt.Errorf("ode: bad interval t0=%g t1=%g", t0, t1)
	}
	span := t1 - t0
	cfg.defaults(span)
	n := sys.Dim()
	if len(y0) != n {
		return nil, Stats{}, fmt.Errorf("ode: state length %d, want %d", len(y0), n)
	}
	y := make([]float64, n)
	copy(y, y0)
	k := make([][]float64, 6)
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	ynew := make([]float64, n)
	yerr := make([]float64, n)

	var st Stats
	if observe != nil {
		observe(t0, y)
	}
	t := t0
	h := math.Min(cfg.H0, cfg.HMax)
	for t < t1 {
		if st.Steps >= cfg.MaxStep {
			return y, st, fmt.Errorf("ode: step budget %d exhausted at t=%g", cfg.MaxStep, t)
		}
		if t+h > t1 {
			h = t1 - t
		}
		// Evaluate the six stages.
		sys.Derivatives(t, y, k[0])
		st.FuncEvals++
		for s := 1; s < 6; s++ {
			for i := 0; i < n; i++ {
				acc := y[i]
				for j := 0; j < s; j++ {
					acc += h * ckB[s][j] * k[j][i]
				}
				ytmp[i] = acc
			}
			sys.Derivatives(t+ckA[s]*h, ytmp, k[s])
			st.FuncEvals++
		}
		// 5th-order solution and embedded error estimate.
		for i := 0; i < n; i++ {
			var acc, errAcc float64
			for s := 0; s < 6; s++ {
				acc += ckC[s] * k[s][i]
				errAcc += ckDC[s] * k[s][i]
			}
			ynew[i] = y[i] + h*acc
			yerr[i] = h * errAcc
		}
		// Error norm against mixed abs/rel tolerance.
		var errNorm float64
		for i := 0; i < n; i++ {
			sc := cfg.AbsTol + cfg.RelTol*math.Max(math.Abs(y[i]), math.Abs(ynew[i]))
			e := math.Abs(yerr[i]) / sc
			if e > errNorm {
				errNorm = e
			}
		}
		if math.IsNaN(errNorm) {
			return y, st, fmt.Errorf("ode: state diverged at t=%g", t)
		}
		if errNorm <= 1 {
			// Accept.
			t += h
			copy(y, ynew)
			st.Steps++
			if observe != nil {
				observe(t, y)
			}
			// Grow step, bounded.
			grow := 5.0
			if errNorm > 0 {
				grow = cfg.Safety * math.Pow(errNorm, -0.2)
				if grow > 5 {
					grow = 5
				}
			}
			h = math.Min(h*grow, cfg.HMax)
		} else {
			// Reject and shrink.
			st.Rejected++
			shrink := cfg.Safety * math.Pow(errNorm, -0.25)
			if shrink < 0.1 {
				shrink = 0.1
			}
			h *= shrink
			if h < cfg.HMin {
				return y, st, fmt.Errorf("%w: h=%g below minimum at t=%g", ErrStepFailed, h, t)
			}
		}
	}
	return y, st, nil
}
