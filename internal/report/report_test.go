package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value", "unit")
	tb.AddRow("alpha", 1.5, "V")
	tb.AddRow("beta-long-name", 0.000123456, "A")
	tb.AddNote("measured at %d Hz", 50)
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta-long-name", "0.0001235", "note: measured at 50 Hz"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Header separator present.
	if !strings.Contains(s, "---") {
		t.Fatal("missing separator")
	}
}

func TestTableStringerCells(t *testing.T) {
	tb := NewTable("x", "a")
	tb.AddRow(stringerVal("hello"))
	if !strings.Contains(tb.String(), "hello") {
		t.Fatal("Stringer cell not rendered")
	}
}

type stringerVal string

func (s stringerVal) String() string { return string(s) }

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("plain", `quo"te`)
	tb.AddRow("with,comma", 2.0)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"quo""te"`) {
		t.Fatalf("quote escaping broken: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Fatalf("comma quoting broken: %q", lines[2])
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("power vs frequency", "f_Hz", "P_uW")
	if err := f.Add("tuned", []float64{40, 50, 60}, []float64{10, 90, 85}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("untuned", []float64{40, 50, 60}, []float64{9, 88, 12}); err != nil {
		t.Fatal(err)
	}
	f.AddNote("amplitude %.1f m/s²", 0.6)
	s := f.String()
	for _, want := range []string{"power vs frequency", "tuned", "untuned", "40", "90", "note: amplitude 0.6"} {
		if !strings.Contains(s, want) {
			t.Fatalf("figure missing %q:\n%s", want, s)
		}
	}
}

func TestFigureAddLengthMismatch(t *testing.T) {
	f := NewFigure("t", "x", "y")
	if err := f.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("t", "x", "y")
	_ = f.Add("s1", []float64{1, 2}, []float64{3, 4})
	_ = f.Add("s2", []float64{1, 2}, []float64{5, 6})
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,s1,s2" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,3,5" || lines[2] != "2,4,6" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestFigureUnevenSeries(t *testing.T) {
	f := NewFigure("t", "x", "y")
	_ = f.Add("long", []float64{1, 2, 3}, []float64{1, 2, 3})
	_ = f.Add("short", []float64{1}, []float64{9})
	s := f.String()
	if !strings.Contains(s, "9") || !strings.Contains(s, "3") {
		t.Fatalf("uneven series render broken:\n%s", s)
	}
	// CSV must not panic and must emit 3 data rows.
	lines := strings.Split(strings.TrimSpace(f.CSV()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv rows = %d", len(lines))
	}
}

func TestEmptyFigure(t *testing.T) {
	f := NewFigure("empty", "x", "y")
	if s := f.String(); !strings.Contains(s, "empty") {
		t.Fatal("empty figure title missing")
	}
}

func TestSeriesDeepCopied(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	f := NewFigure("t", "x", "y")
	_ = f.Add("s", x, y)
	x[0] = 99
	if f.Series[0].X[0] == 99 {
		t.Fatal("series must copy data")
	}
}
