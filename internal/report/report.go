// Package report renders the reproduction experiments' tables and figure
// series as aligned text and CSV — the output format of cmd/experiments
// and the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// formatFloat renders a float compactly: %.4g with trailing noise trimmed.
func formatFloat(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Series is one named data series of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a titled collection of series sharing an x axis meaning.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series; x and y must have equal length.
func (f *Figure) Add(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("report: series %q has %d x but %d y", name, len(x), len(y))
	}
	f.Series = append(f.Series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return nil
}

// AddNote appends a footnote.
func (f *Figure) AddNote(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// String renders the figure as aligned columns: x followed by one column
// per series (rows unioned over all x values in first-series order).
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "# x = %s, y = %s\n", f.XLabel, f.YLabel)
	if len(f.Series) == 0 {
		return b.String()
	}
	// Header.
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-14s", s.Name)
	}
	b.WriteByte('\n')
	// Assume shared x (the common case); if series lengths differ, render
	// each up to its own length.
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		var x float64
		seen := false
		for _, s := range f.Series {
			if i < len(s.X) {
				x = s.X[i]
				seen = true
				break
			}
		}
		if !seen {
			break
		}
		fmt.Fprintf(&b, "%-12.5g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "  %-14.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, "  %-14s", "")
			}
		}
		b.WriteByte('\n')
	}
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// CSV renders the figure as CSV with an x column and one column per
// series.
func (f *Figure) CSV() string {
	var b strings.Builder
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	writeCSVRow(&b, headers)
	n := 0
	for _, s := range f.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(f.Series)+1)
		var x float64
		for _, s := range f.Series {
			if i < len(s.X) {
				x = s.X[i]
				break
			}
		}
		row = append(row, formatFloat(x))
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, formatFloat(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		writeCSVRow(&b, row)
	}
	return b.String()
}
