package benchkit

import (
	"path/filepath"
	"testing"
)

func report(cal float64, benches map[string]Metric) *Report {
	r := &Report{
		SchemaVersion: SchemaVersion,
		CalibrationNs: cal,
		Benchmarks:    map[string]Metric{},
	}
	for name, m := range benches {
		if cal > 0 {
			m.Normalized = m.NsPerOp / cal
		}
		r.Benchmarks[name] = m
	}
	return r
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	base := report(100, map[string]Metric{
		"sim/RunFast": {NsPerOp: 1000, AllocsPerOp: 40},
	})
	cur := report(100, map[string]Metric{
		"sim/RunFast": {NsPerOp: 1200, AllocsPerOp: 40}, // +20% < 25%
	})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance drift must pass, got %v", regs)
	}
}

func TestCompareFlagsTimeRegression(t *testing.T) {
	base := report(100, map[string]Metric{
		"sim/RunFast": {NsPerOp: 1000, AllocsPerOp: 40},
	})
	cur := report(100, map[string]Metric{
		"sim/RunFast": {NsPerOp: 1300, AllocsPerOp: 40}, // +30% > 25%
	})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || regs[0].Kind != "time" || regs[0].Name != "sim/RunFast" {
		t.Fatalf("want one time regression, got %v", regs)
	}
}

// TestCompareNormalizesAcrossMachines: the current machine is 2x slower
// (calibration 200 vs 100), so 2x the raw ns/op is the same normalized
// speed and must pass.
func TestCompareNormalizesAcrossMachines(t *testing.T) {
	base := report(100, map[string]Metric{
		"sim/RunFast": {NsPerOp: 1000, AllocsPerOp: 40},
	})
	cur := report(200, map[string]Metric{
		"sim/RunFast": {NsPerOp: 2000, AllocsPerOp: 40},
	})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("calibration-equal run must pass, got %v", regs)
	}
	// Same raw ns on a machine measured 2x faster IS a regression.
	fast := report(50, map[string]Metric{
		"sim/RunFast": {NsPerOp: 1000, AllocsPerOp: 40},
	})
	if regs := Compare(base, fast, 0.25); len(regs) != 1 {
		t.Fatalf("normalized regression must trip, got %v", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := report(100, map[string]Metric{
		"la/Expm": {NsPerOp: 100, AllocsPerOp: 0},
	})
	cur := report(100, map[string]Metric{
		"la/Expm": {NsPerOp: 100, AllocsPerOp: 1}, // 0 -> 1 must trip
	})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || regs[0].Kind != "allocs" {
		t.Fatalf("want one alloc regression, got %v", regs)
	}
}

func TestCompareIgnoresDisjointBenchmarks(t *testing.T) {
	base := report(100, map[string]Metric{
		"retired": {NsPerOp: 10},
	})
	cur := report(100, map[string]Metric{
		"brand-new": {NsPerOp: 1e9},
	})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("disjoint benchmark sets must not fail, got %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := NewReport()
	if r.CalibrationNs <= 0 {
		t.Fatal("calibration must measure something")
	}
	r.Add("x", testing.Benchmark(func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < 100; j++ {
				s += float64(i ^ j)
			}
		}
		calSink += s
	}))
	r.SetSpeedup("a_vs_b", 3.5)
	r.AddMetric("ext_p50", Metric{NsPerOp: 42e6})
	r.SetStat("shed_rate", 0.25)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["x"].NsPerOp != r.Benchmarks["x"].NsPerOp {
		t.Fatal("ns/op did not round-trip")
	}
	if got.Speedups["a_vs_b"] != 3.5 {
		t.Fatal("speedups did not round-trip")
	}
	if got.Benchmarks["x"].Normalized <= 0 {
		t.Fatal("normalized time must be recorded")
	}
	if got.Benchmarks["ext_p50"].Normalized <= 0 {
		t.Fatal("AddMetric must normalize like Add")
	}
	if got.Stats["shed_rate"] != 0.25 {
		t.Fatal("stats did not round-trip")
	}
}

// TestStatsNeverGated: a stat that explodes between reports must not trip
// Compare — stats are trend data, not gates.
func TestStatsNeverGated(t *testing.T) {
	base := report(100, map[string]Metric{"x": {NsPerOp: 100}})
	base.SetStat("p99_ms", 1)
	cur := report(100, map[string]Metric{"x": {NsPerOp: 100}})
	cur.SetStat("p99_ms", 1000)
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("stats drift must never gate, got %v", regs)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := NewReport()
	r.SchemaVersion = SchemaVersion + 1
	b := *r
	if err := (&b).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong schema version must be rejected")
	}
}

func TestCompareFlagsSpeedupRegression(t *testing.T) {
	base := report(100, nil)
	base.Speedups = map[string]float64{"batch_Kv1": 4.0, "fast_vs_reference": 50}
	cur := report(100, nil)
	cur.Speedups = map[string]float64{"batch_Kv1": 2.5, "fast_vs_reference": 49} // -37% vs -2%
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || regs[0].Kind != "speedup" || regs[0].Name != "batch_Kv1" {
		t.Fatalf("want one speedup regression, got %v", regs)
	}
	if regs[0].Baseline != 4.0 || regs[0].Current != 2.5 {
		t.Fatalf("regression values wrong: %+v", regs[0])
	}
}

func TestCompareSpeedupWithinToleranceAndDisjoint(t *testing.T) {
	base := report(100, nil)
	base.Speedups = map[string]float64{"batch_Kv1": 4.0, "retired": 9}
	cur := report(100, nil)
	cur.Speedups = map[string]float64{"batch_Kv1": 3.2, "brand_new": 2} // -20% < 25%
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance and disjoint speedups must pass, got %v", regs)
	}
	// A higher ratio is never a regression.
	cur.Speedups["batch_Kv1"] = 8
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("improved speedup must pass, got %v", regs)
	}
}
