// Package benchkit is the benchmark-regression harness: it turns
// testing.Benchmark results into a JSON report (BENCH_<n>.json), and
// compares a fresh report against a committed baseline with a tolerance
// band so CI fails loudly when a hot path regresses.
//
// Raw ns/op is meaningless across machines, so every report carries a
// calibration measurement — the ns/op of a fixed pure-CPU workload on the
// reporting machine — and comparisons use calibration-normalized time
// (NsPerOp / CalibrationNs). Two machines that differ only in clock speed
// produce the same normalized numbers; an algorithmic regression moves
// them on both.
package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
)

// SchemaVersion identifies the report layout; bump on incompatible change.
const SchemaVersion = 1

// Metric is one benchmark's measurements.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Normalized is NsPerOp divided by the report's CalibrationNs — the
	// machine-independent time measure comparisons use.
	Normalized float64 `json:"normalized,omitempty"`
}

// Report is one harness run: metrics per benchmark plus derived speedups
// and the machine calibration they were measured under.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoOS          string `json:"goos"`
	GoArch        string `json:"goarch"`
	GoVersion     string `json:"go_version"`
	// CalibrationNs is the ns/op of the fixed calibration workload on the
	// machine that produced this report.
	CalibrationNs float64 `json:"calibration_ns"`
	// Speedups carries derived ratios (e.g. "fast_vs_reference",
	// "rsm_vs_sim") computed by the harness binary.
	Speedups   map[string]float64 `json:"speedups,omitempty"`
	Benchmarks map[string]Metric  `json:"benchmarks"`
	// Stats carries informational measurements (e.g. a load test's p99 or
	// shed rate) recorded for trend-watching but NEVER drift-gated:
	// Compare ignores them, so a noisy CI runner cannot fail the build on
	// a tail quantile.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// NewReport returns an empty report stamped with the platform and the
// calibration measurement.
func NewReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		GoVersion:     runtime.Version(),
		CalibrationNs: Calibrate(),
		Speedups:      map[string]float64{},
		Benchmarks:    map[string]Metric{},
	}
}

// Add records a testing.Benchmark result under name.
func (r *Report) Add(name string, br testing.BenchmarkResult) {
	m := Metric{
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if r.CalibrationNs > 0 {
		m.Normalized = m.NsPerOp / r.CalibrationNs
	}
	r.Benchmarks[name] = m
}

// SetSpeedup records a derived ratio under name.
func (r *Report) SetSpeedup(name string, v float64) {
	if r.Speedups == nil {
		r.Speedups = map[string]float64{}
	}
	r.Speedups[name] = v
}

// AddMetric records an externally-measured benchmark (one that did not
// come from testing.Benchmark, e.g. a load generator's p50) under name,
// normalizing it like Add does so the drift gate applies.
func (r *Report) AddMetric(name string, m Metric) {
	if r.CalibrationNs > 0 && m.Normalized == 0 {
		m.Normalized = m.NsPerOp / r.CalibrationNs
	}
	r.Benchmarks[name] = m
}

// SetStat records an ungated informational measurement under name.
func (r *Report) SetStat(name string, v float64) {
	if r.Stats == nil {
		r.Stats = map[string]float64{}
	}
	r.Stats[name] = v
}

var calSink float64

// Calibrate measures the machine: ns/op of a fixed floating-point kernel,
// sized (~1000 FLOPs) so the benchmark framework settles in well under a
// second. Reports normalize against it so baselines survive hardware
// changes.
func Calibrate() float64 {
	br := testing.Benchmark(func(b *testing.B) {
		x := 1.0000001
		var s float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < 500; j++ {
				s += x * float64(j)
				x = x*1.0000000001 + 1e-12
			}
		}
		calSink += s + x
	})
	return float64(br.NsPerOp())
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a report written by WriteFile.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchkit: parsing %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchkit: %s has schema %d, harness speaks %d", path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Regression is one benchmark that moved past the tolerance band.
type Regression struct {
	Name     string  // benchmark or speedup name
	Kind     string  // "time", "allocs" or "speedup"
	Baseline float64 // baseline measure (normalized ns, allocs/op or ratio)
	Current  float64 // current measure
	Limit    float64 // the threshold Current exceeded (or fell below)
}

func (v Regression) String() string {
	return fmt.Sprintf("%s: %s regressed: baseline %.4g, current %.4g (limit %.4g)",
		v.Name, v.Kind, v.Baseline, v.Current, v.Limit)
}

// Compare checks current against baseline and returns the regressions:
// benchmarks whose calibration-normalized time grew by more than tol
// (fractional, e.g. 0.25 = +25 %), or whose allocation count grew past
// tol plus a small absolute slack (so 0 → 1 allocs on a tiny benchmark
// still trips, but measurement jitter on large counts does not). Derived
// speedups are drift-gated the other way: a ratio that FELL below
// baseline×(1−tol) regresses — the win the baseline recorded has eroded.
// Benchmarks and speedups present in only one report are ignored — adding
// or retiring a metric must not fail CI.
func Compare(baseline, current *Report, tol float64) []Regression {
	var out []Regression
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			continue
		}
		bt, ct := base.NsPerOp, cur.NsPerOp
		if base.Normalized > 0 && cur.Normalized > 0 {
			bt, ct = base.Normalized, cur.Normalized
		}
		if limit := bt * (1 + tol); ct > limit {
			out = append(out, Regression{Name: name, Kind: "time", Baseline: bt, Current: ct, Limit: limit})
		}
		if limit := base.AllocsPerOp*(1+tol) + 0.5; cur.AllocsPerOp > limit {
			out = append(out, Regression{Name: name, Kind: "allocs", Baseline: base.AllocsPerOp, Current: cur.AllocsPerOp, Limit: limit})
		}
	}
	var speedups []string
	for name := range baseline.Speedups {
		speedups = append(speedups, name)
	}
	sort.Strings(speedups)
	for _, name := range speedups {
		base := baseline.Speedups[name]
		cur, ok := current.Speedups[name]
		if !ok || base <= 0 {
			continue
		}
		if limit := base * (1 - tol); cur < limit {
			out = append(out, Regression{Name: name, Kind: "speedup", Baseline: base, Current: cur, Limit: limit})
		}
	}
	return out
}
