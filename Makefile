GO ?= go
BENCH_OUT ?= BENCH_10.json
BASELINE ?= bench_baseline.json
TOLERANCE ?= 0.25

.PHONY: build test vet race bench bench-baseline bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the regression harness: measures the hot paths, writes
# $(BENCH_OUT), and fails if anything regressed past $(TOLERANCE) vs the
# committed $(BASELINE).
bench:
	$(GO) run ./cmd/bench -out $(BENCH_OUT) -baseline $(BASELINE) -tolerance $(TOLERANCE)

# bench-baseline re-records the committed baseline. Run on a quiet machine
# and commit the result when a deliberate performance change moves the
# numbers.
bench-baseline:
	$(GO) run ./cmd/bench -out $(BASELINE)

# bench-smoke runs every testing.B benchmark once — a compile-and-run
# check, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
