// Exploration example: interactive-style design-space exploration on
// fitted response surfaces — sweeps, a 2-D surface slice, a constrained
// Pareto trade-off — all without re-running the simulator after the
// initial designed experiment.
//
// Run with: go run ./examples/exploration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/explore"
	"repro/internal/report"
	"repro/internal/rsm"
)

func main() {
	p := core.StandardProblem(0.6, 30)
	design, err := doe.CentralComposite(len(p.Factors), doe.CCF, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("building surfaces from %d simulations...\n\n", design.N())
	ds, err := p.RunDesign(design)
	if err != nil {
		log.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		log.Fatal(err)
	}

	evPackets, err := s.Evaluator(core.RespPackets)
	if err != nil {
		log.Fatal(err)
	}
	evMargin, err := s.Evaluator(core.RespNetMargin)
	if err != nil {
		log.Fatal(err)
	}
	evStored, err := s.Evaluator(core.RespStoredEnergy)
	if err != nil {
		log.Fatal(err)
	}

	// 1-D sweep: packets vs measurement period, everything else centred.
	periodFactor := p.Factors[0]
	pts, err := explore.Sweep1D(evPackets, []float64{0, 0, 0, 0}, 0, 11, periodFactor.Decode)
	if err != nil {
		log.Fatal(err)
	}
	fig := report.NewFigure("packets vs measurement period (surface sweep)", "period_s", "packets")
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i], ys[i] = pt.Natural, pt.Y
	}
	if err := fig.Add("packets", xs, ys); err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.String())

	// 2-D slice: stored energy over period × supercap.
	grid, err := explore.Surface2D(evStored, []float64{0, 0, 0, 0}, 0, 1, 9)
	if err != nil {
		log.Fatal(err)
	}
	mn, mx := grid.MinMax()
	fmt.Printf("stored-energy surface over period x supercap: min %.3g J, max %.3g J\n\n", mn, mx)

	// Constrained trade-off: among designs with a non-negative energy
	// margin, which maximize packets?
	var candidates [][]float64
	for i := 0; i < 13; i++ {
		for j := 0; j < 13; j++ {
			candidates = append(candidates, []float64{
				-1 + 2*float64(i)/12, 0, -1 + 2*float64(j)/12, 0,
			})
		}
	}
	cands := explore.EvaluateAll(candidates, []explore.Evaluator{evPackets, evMargin})
	feasible := explore.Filter(cands, explore.AtLeast(1, 0)) // margin ≥ 0
	front := explore.ParetoFront(feasible)
	t := report.NewTable("energy-neutral Pareto designs (period x vth plane)",
		"period_s", "vth_V", "packets", "margin_mJ")
	for _, c := range front {
		t.AddRow(p.Factors[0].Decode(c.X[0]), p.Factors[2].Decode(c.X[2]), c.Objectives[0], c.Objectives[1])
	}
	t.AddNote("%d of %d candidates feasible; %d on the front; zero simulations used for this analysis",
		len(feasible), len(cands), len(front))
	fmt.Println(t.String())
}
