// Refinement example: sequential response-surface methodology. When a
// response refuses to be quadratic over the full design region (here:
// harvested power, which carries the harvester's Lorentzian resonance
// peak), the classical move is to shrink the region around the point of
// interest and re-run the same small design. This example quantifies the
// improvement and shows the lack-of-fit diagnostic that triggers it.
//
// Run with: go run ./examples/refinement
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/report"
	"repro/internal/rsm"
)

func main() {
	full := core.StandardProblem(0.6, 30)
	k := len(full.Factors)
	design, err := doe.CentralComposite(k, doe.CCF, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Fixed physical validation points inside the innermost region, so
	// every surface is judged on identical designs.
	inner, err := full.Subregion(make([]float64, k), 0.25)
	if err != nil {
		log.Fatal(err)
	}
	const nVal = 6
	valNatural := make([][]float64, nVal)
	for i := range valNatural {
		nat := make([]float64, k)
		for j, f := range inner.Factors {
			nat[j] = f.Min + (0.15+0.7*float64((i*(j+2))%nVal)/float64(nVal))*(f.Max-f.Min)
		}
		valNatural[i] = nat
	}
	simVals := make([]float64, nVal)
	for i, nat := range valNatural {
		coded := make([]float64, k)
		for j, f := range full.Factors {
			coded[j] = f.Encode(nat[j])
		}
		resp, err := full.ResponsesAt(coded)
		if err != nil {
			log.Fatal(err)
		}
		simVals[i] = resp[core.RespHarvestedPower]
	}

	t := report.NewTable("sequential refinement of the harvested-power surface",
		"region", "R2", "PRESS_R2", "val_RMSE_uW")
	for _, scale := range []float64{1.0, 0.5, 0.25} {
		prob := full
		if scale < 1 {
			prob, err = full.Subregion(make([]float64, k), scale)
			if err != nil {
				log.Fatal(err)
			}
		}
		ds, err := prob.RunDesignParallel(design, 0)
		if err != nil {
			log.Fatal(err)
		}
		fit, err := rsm.FitModel(rsm.FullQuadratic(k), design.Runs, ds.Y[core.RespHarvestedPower])
		if err != nil {
			log.Fatal(err)
		}
		var sse float64
		for i, nat := range valNatural {
			coded := make([]float64, k)
			for j, f := range prob.Factors {
				coded[j] = f.Encode(nat[j])
			}
			d := fit.Predict(coded) - simVals[i]
			sse += d * d
		}
		t.AddRow(fmt.Sprintf("scale %.2f", scale), fit.R2, fit.R2Pred, math.Sqrt(sse/nVal))
	}
	t.AddNote("same 27-run CCF each time; validation on %d fixed designs inside the 0.25x region", nVal)
	fmt.Println(t.String())

	fmt.Println("Each refinement costs one more small designed experiment — still far")
	fmt.Println("cheaper than any simulator-in-the-loop search — and buys the high")
	fmt.Println("accuracy the paper promises, even for the resonance-shaped response.")
}
