// Tuning example: the resonance-tuning controller tracking a machine whose
// vibration frequency drifts, and what that buys in harvested energy.
//
// It runs the same drifting-excitation scenario three times — untuned,
// tuned with a conservative controller, tuned with an aggressive one — and
// prints the energy ledger of each, showing the trade-off between tuning
// actuator energy and harvested energy that the DoE flow quantifies.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

func main() {
	const horizon = 180.0

	// A machine spinning up: 48 Hz for a minute, then 66 Hz, then easing
	// to 58 Hz — always inside the harvester's 45–90 Hz tunable band but
	// far from its untuned 45 Hz resonance.
	src, err := vibration.NewSteppedSine(0.6, []vibration.FreqStep{
		{At: 0, Freq: 48},
		{At: 60, Freq: 66},
		{At: 120, Freq: 58},
	})
	if err != nil {
		log.Fatal(err)
	}

	var untunedPower float64 // filled by the first (untuned) run
	run := func(name string, tc *tuner.Config) []interface{} {
		d := sim.DefaultDesign()
		d.Tuner = tc
		r, err := sim.RunFast(d, sim.Config{Horizon: horizon, Source: src})
		if err != nil {
			log.Fatal(err)
		}
		if tc == nil {
			untunedPower = r.AvgHarvestedPower
		}
		net := r.HarvestedEnergy - r.TuneEnergy
		payback := "-"
		if gain := r.AvgHarvestedPower - untunedPower; tc != nil && gain > 0 {
			payback = fmt.Sprintf("%.0f", r.TuneEnergy/gain)
		}
		return []interface{}{
			name,
			r.HarvestedEnergy * 1e3,
			r.TuneEnergy * 1e3,
			net * 1e3,
			r.FinalResFreq,
			r.TuneMoves,
			payback,
		}
	}

	conservative := tuner.DefaultConfig()
	conservative.Interval = 20
	conservative.DeadbandHz = 2
	conservative.ActuatorSpeed = 0.3e-3

	aggressive := tuner.DefaultConfig()
	aggressive.Interval = 4
	aggressive.DeadbandHz = 0.3
	aggressive.ActuatorSpeed = 1e-3

	t := report.NewTable("drifting excitation: what resonance tuning buys",
		"controller", "harvested_mJ", "tuning_cost_mJ", "net_mJ", "final_res_Hz", "moves", "payback_s")
	t.AddRow(run("untuned", nil)...)
	t.AddRow(run("conservative (20 s, ±2 Hz)", &conservative)...)
	t.AddRow(run("aggressive (4 s, ±0.3 Hz)", &aggressive)...)
	t.AddNote("excitation: 48 → 66 → 58 Hz steps at 0.6 m/s² over %.0f s; untuned resonance 45 Hz", horizon)
	t.AddNote("payback = tuning energy / harvested-power gain over the untuned baseline")
	fmt.Println(t.String())

	fmt.Println("The controller pays actuator energy to keep the resonance on the")
	fmt.Println("excitation; whether aggressive tracking is worth it depends on how")
	fmt.Println("fast the environment drifts and how long the node stays deployed —")
	fmt.Println("exactly the trade-off the DoE/RSM flow explores without re-running")
	fmt.Println("transient simulations.")
}
