// Scenarios example: the three application profiles from the paper's
// introduction — environmental sensing, structural monitoring and
// pervasive healthcare — each simulated end-to-end on the full node model
// with its own excitation environment and energy-management policy.
//
// Run with: go run ./examples/scenarios
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/node"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

func main() {
	const horizon = 120.0

	type scenario struct {
		name   string
		design sim.Design
		source vibration.Source
	}
	var scenarios []scenario

	// Environmental sensing: low measurement rate, steady machinery hum
	// at the untuned resonance, conservative threshold policy.
	env := sim.DefaultDesign()
	env.Node.Period = 20
	env.Store.C = 0.05
	env.InitialStoreV = 3.3
	env.Policy = node.ThresholdPolicy{VThreshold: 3.0}
	scenarios = append(scenarios, scenario{
		name:   "environmental sensing",
		design: env,
		source: vibration.Sine{Amplitude: 0.7, Freq: 45},
	})

	// Structural monitoring: a bridge whose dominant mode wanders with
	// load and temperature — the tuning controller keeps the harvester on
	// frequency; adaptive duty cycling rides the energy state.
	structural := sim.DefaultDesign()
	structural.Node.Period = 5
	structural.Store.C = 0.05
	structural.InitialStoreV = 3.3
	structural.Policy = node.AdaptivePolicy{VEmpty: 2.6, VFull: 3.6, MaxScale: 8}
	tc := tuner.DefaultConfig()
	tc.Interval = 10
	tc.ActuatorSpeed = 0.5e-3
	structural.Tuner = &tc
	walk, err := vibration.NewRandomWalkSine(0.7, 60, 0.15, 52, 68, horizon, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:   "structural monitoring (tuned)",
		design: structural,
		source: walk,
	})

	// Pervasive healthcare: body-worn node, high measurement rate, noisy
	// low-amplitude excitation; always-transmit firmware.
	health := sim.DefaultDesign()
	health.Node.Period = 2
	health.Store.C = 0.02
	health.InitialStoreV = 3.3
	health.Policy = node.AlwaysTransmit{}
	noisy, err := vibration.NewNoisySine(vibration.Sine{Amplitude: 0.8, Freq: 45}, 0.15, horizon, 1e-3, 11)
	if err != nil {
		log.Fatal(err)
	}
	scenarios = append(scenarios, scenario{
		name:   "pervasive healthcare",
		design: health,
		source: noisy,
	})

	t := report.NewTable(fmt.Sprintf("application scenarios (%.0f s each)", horizon),
		"scenario", "policy", "packets", "harvested_mJ", "margin_mJ", "final_V", "first_tx_s")
	for _, sc := range scenarios {
		r, err := sim.RunFast(sc.design, sim.Config{Horizon: horizon, Source: sc.source})
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		firstTx := "never"
		if !math.IsNaN(r.Node.FirstTxTime) {
			firstTx = fmt.Sprintf("%.1f", r.Node.FirstTxTime)
		}
		t.AddRow(sc.name, sc.design.Policy.Name(), r.Node.Packets,
			r.HarvestedEnergy*1e3, r.NetEnergyMargin*1e3, r.FinalStoreV, firstTx)
	}
	t.AddNote("every row is a full transient simulation of harvester + multiplier + store + regulator + node")
	fmt.Println(t.String())
}
