// Multiresponse example: Derringer–Suich desirability optimization — the
// classical RSM answer to "I want throughput AND a sustainable energy
// budget AND fast first contact", folded into one score and optimized on
// the fitted surfaces.
//
// Run with: go run ./examples/multiresponse
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/opt"
	"repro/internal/report"
	"repro/internal/rsm"
)

func main() {
	p := core.StandardProblem(0.6, 30)
	design, err := doe.CentralComposite(len(p.Factors), doe.CCF, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("building surfaces from %d simulations (parallel)...\n\n", design.N())
	ds, err := p.RunDesignParallel(design, 0)
	if err != nil {
		log.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		log.Fatal(err)
	}

	// The designer's brief, as desirability shapes:
	//  - packets: worthless below 2, fully satisfying at 12+;
	//  - net energy margin: unacceptable below −3 mJ, ideal above +0.5 mJ
	//    (twice the weight: sustainability trumps throughput);
	//  - time to first packet: great under 5 s, unacceptable beyond 25 s.
	goals := []core.DesirabilityGoal{
		{Response: core.RespPackets, Shape: opt.Larger{Lo: 2, Hi: 12}},
		{Response: core.RespNetMargin, Shape: opt.Larger{Lo: -3, Hi: 0.5}, Weight: 2},
		{Response: core.RespFirstTx, Shape: opt.Smaller{Lo: 5, Hi: 25}},
	}
	res, err := s.OptimizeDesirability(goals, 6, 1)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("compromise design (composite desirability)", "factor", "value", "unit")
	for i, f := range p.Factors {
		t.AddRow(f.Name, res.Natural[i], f.Unit)
	}
	t.AddNote("composite desirability: %.3f predicted, %.3f confirmed by one simulation", res.Score, res.Confirmed)
	fmt.Println(t.String())

	rt := report.NewTable("per-response outcome at the compromise", "response", "surface", "simulated")
	for _, g := range goals {
		rt.AddRow(string(g.Response), res.Predicted[g.Response], res.Simulated[g.Response])
	}
	fmt.Println(rt.String())

	fmt.Println("A zero composite score would mean some requirement is impossible in")
	fmt.Println("this region — the cue to relax a shape or refine the design space")
	fmt.Println("with Problem.Subregion and a fresh (small) designed experiment.")
}
