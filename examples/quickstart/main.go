// Quickstart: the complete DoE-based design flow in one file.
//
//  1. Define the design problem (factors, responses, simulation scenario).
//  2. Run a central composite design on the fast whole-node simulator.
//  3. Fit second-order response surfaces.
//  4. Explore the captured design space instantly and pick an optimum,
//     confirming it with a single simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/report"
	"repro/internal/rsm"
)

func main() {
	// The standard 4-factor sensor-node problem: measurement period,
	// supercapacitor size, transmit threshold and excitation frequency
	// offset, simulated for 30 s per design point at 0.6 m/s².
	p := core.StandardProblem(0.6, 30)

	// A face-centred central composite design: 2^4 corners + 8 axial
	// points + 3 centre runs = 27 simulations. This is the "moderate
	// number of simulations" the paper spends once.
	design, err := doe.CentralComposite(len(p.Factors), doe.CCF, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d simulations (%s)...\n", design.N(), design.Name)
	ds, err := p.RunDesign(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation phase: %v\n\n", ds.SimTime.Round(1e6))

	// Fit one full-quadratic surface per performance indicator.
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("fitted response surfaces", "response", "R2", "adjR2")
	for _, id := range p.Responses {
		fit := s.Fits[id]
		t.AddRow(string(id), fit.R2, fit.AdjR2)
	}
	fmt.Println(t.String())

	// The design space is now captured: evaluate any what-if instantly.
	probe := []float64{-0.5, 0.5, 0, 0} // short period, large supercap
	pkts, err := s.Predict(core.RespPackets, probe)
	if err != nil {
		log.Fatal(err)
	}
	margin, err := s.Predict(core.RespNetMargin, probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("what-if at coded %v: %.1f packets, %.2f mJ margin (no simulation run)\n\n", probe, pkts, margin)

	// Optimize stored energy on the surface; one confirming simulation.
	best, err := s.Optimize(core.RespStoredEnergy, true, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	ot := report.NewTable("optimum (stored energy)", "factor", "value", "unit")
	for i, f := range p.Factors {
		ot.AddRow(f.Name, best.Natural[i], f.Unit)
	}
	ot.AddNote("surface predicted %.4g J; confirming simulation measured %.4g J (%.2f%% apart)",
		best.Predicted, best.Confirmed, 100*best.RelError)
	fmt.Println(ot.String())
}
