// Package repro's root benchmark harness: one testing.B benchmark per
// reproduced table and figure (DESIGN.md §5), each running the full
// experiment pipeline in its quick configuration. Run with
//
//	go test -bench=. -benchmem
//
// at the repository root; cmd/experiments prints the full-size versions.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

var benchCfg = experiments.Config{Quick: true, Seed: 1}

// sinkTable/sinkFigure keep results alive so the compiler cannot elide the
// experiment work.
var (
	sinkRows   int
	sinkSeries int
)

func BenchmarkFigF1TunedVsUntuned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigF1TunedVsUntuned(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries += len(fig.Series)
	}
}

func BenchmarkTabT1EngineSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT1EngineSpeedup(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabT2DesignComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT2DesignComparison(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabT3RSMAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT3RSMAccuracy(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabT4ExplorationSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT4ExplorationSpeed(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkFigF2Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigF2Surface(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries += len(fig.Series)
	}
}

func BenchmarkFigF3Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigF3Tradeoff(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries += len(fig.Series)
	}
}

func BenchmarkTabT5Optimizers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT5Optimizers(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkFigF4TuningTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigF4TuningTransient(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries += len(fig.Series)
	}
}

func BenchmarkTabT6Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT6Scenarios(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabT7ANOVA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT7ANOVA(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabT8Refinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabT8Refinement(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkFigF5BuildCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigF5BuildCost(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkSeries += len(fig.Series)
	}
}

func BenchmarkTabA1StepSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabA1StepSize(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabA5MultiplierModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabA5MultiplierModels(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}

func BenchmarkTabA6Estimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TabA6Estimators(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkRows += len(t.Rows)
	}
}
