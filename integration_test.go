// Cross-package integration test: the complete design flow of the paper,
// exercised end to end through the public seams of every layer — physics
// (harvester → power → node via sim), statistics (doe → rsm), and the
// flow facade (core) — with final numbers checked against fresh
// simulations.
package repro

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/doe"
	"repro/internal/explore"
	"repro/internal/opt"
	"repro/internal/rsm"
)

func TestEndToEndDesignFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end flow runs ~40 simulations")
	}
	p := core.StandardProblem(0.6, 20)
	k := len(p.Factors)

	// Phase 1: the designed experiment, run in parallel.
	design, err := doe.CentralComposite(k, doe.CCF, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesignParallel(design, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: surfaces for every indicator.
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(k))
	if err != nil {
		t.Fatal(err)
	}
	fit := s.Fits[core.RespStoredEnergy]
	if fit.R2 < 0.99 {
		t.Fatalf("stored-energy surface R² = %v", fit.R2)
	}

	// Phase 3: diagnostics on the fitted surface — replicated centre
	// points enable the lack-of-fit test; no run should be an outlier.
	if lof, err := fit.LackOfFitTest(design.Runs, ds.Y[core.RespStoredEnergy]); err != nil {
		t.Fatalf("lack-of-fit unavailable: %v", err)
	} else if lof.Replicates == 0 {
		t.Fatal("CCD centre replication not detected")
	}
	// Influence diagnostics must be well-defined for every run. (Outlier
	// thresholds are not asserted here: with a deterministic simulator the
	// residual σ is nearly zero, so any model bias inflates studentized
	// residuals — the statistic is meaningful under replication noise.)
	cooks := fit.CooksDistances()
	if len(cooks) != design.N() {
		t.Fatalf("Cook's distances: %d values for %d runs", len(cooks), design.N())
	}
	for i, c := range cooks {
		if math.IsNaN(c) || c < 0 {
			t.Fatalf("bad Cook's distance %v at run %d", c, i)
		}
	}

	// Phase 4: instant exploration — the Pareto front over the surfaces
	// must contain an energy-positive design.
	evPk, err := s.Evaluator(core.RespPackets)
	if err != nil {
		t.Fatal(err)
	}
	evMg, err := s.Evaluator(core.RespNetMargin)
	if err != nil {
		t.Fatal(err)
	}
	var grid [][]float64
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			grid = append(grid, []float64{-1 + 0.25*float64(i), 0, -1 + 0.25*float64(j), 0})
		}
	}
	cands := explore.EvaluateAll(grid, []explore.Evaluator{evPk, evMg})
	front := explore.ParetoFront(cands)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}

	// Phase 5: single-response optimum, confirmed against the simulator.
	best, err := s.Optimize(core.RespStoredEnergy, true, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.RelError > 0.05 {
		t.Fatalf("surface optimum off by %.1f%% against simulation", 100*best.RelError)
	}

	// Phase 6: multi-response compromise via desirability, also confirmed.
	goals := []core.DesirabilityGoal{
		{Response: core.RespPackets, Shape: opt.Larger{Lo: 0, Hi: 8}},
		{Response: core.RespNetMargin, Shape: opt.Larger{Lo: -4, Hi: 0.5}, Weight: 2},
	}
	comp, err := s.OptimizeDesirability(goals, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Score <= 0 {
		t.Fatal("no feasible compromise found")
	}
	if math.Abs(comp.Score-comp.Confirmed) > 0.5 {
		t.Fatalf("desirability prediction %v vs confirmed %v: surfaces useless", comp.Score, comp.Confirmed)
	}

	// Phase 7: persistence round trip keeps predicting identically.
	saved := s.SaveWithData(ds)
	data, err := saved.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeSurfaces(data)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.2, 0.4, 0}
	live := fit.Predict(probe)
	loaded, err := back.Predict(core.RespStoredEnergy, probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(live-loaded) > 1e-12*(1+math.Abs(live)) {
		t.Fatalf("persistence drift: %v vs %v", live, loaded)
	}
}
