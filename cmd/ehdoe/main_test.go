package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestPipeline drives every subcommand end to end against a real (small)
// build: the closest thing to a user session.
func TestPipeline(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "surfaces.json")

	if err := cmdBuild([]string{"-horizon", "10", "-out", model}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model file missing: %v", err)
	}
	if err := cmdInfo([]string{"-model", model}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdPredict([]string{"-model", model, "-at", "period=5,vth=3.0"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if err := cmdSweep([]string{"-model", model, "-response", "packets", "-factor", "period", "-points", "5"}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if err := cmdOptimize([]string{"-model", model, "-response", "stored_energy_J"}); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if err := cmdValidate([]string{"-model", model, "-n", "2"}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := cmdANOVA([]string{"-model", model, "-response", "stored_energy_J"}); err != nil {
		t.Fatalf("anova: %v", err)
	}
}

func TestBuildRejectsUnknownDesign(t *testing.T) {
	if err := cmdBuild([]string{"-design", "nope", "-out", filepath.Join(t.TempDir(), "x.json")}); err == nil {
		t.Fatal("unknown design must fail")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(bad); err == nil {
		t.Fatal("corrupt file must fail")
	}
}

func TestParsePoint(t *testing.T) {
	ss := &core.SavedSurfaces{}
	ss.Factors = core.StandardProblem(0.6, 10).Factors

	nat, err := parsePoint(ss, "")
	if err != nil {
		t.Fatal(err)
	}
	// Defaults to factor centres.
	if nat[0] != (2+20)/2.0 {
		t.Fatalf("default period = %v", nat[0])
	}
	nat, err = parsePoint(ss, "period=7, vth=2.9")
	if err != nil {
		t.Fatal(err)
	}
	if nat[0] != 7 || nat[2] != 2.9 {
		t.Fatalf("parsed = %v", nat)
	}
	if _, err := parsePoint(ss, "bogus"); err == nil {
		t.Fatal("malformed assignment must fail")
	}
	if _, err := parsePoint(ss, "nope=1"); err == nil {
		t.Fatal("unknown factor must fail")
	}
	if _, err := parsePoint(ss, "period=abc"); err == nil {
		t.Fatal("non-numeric value must fail")
	}
}

func TestSweepErrors(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "s.json")
	if err := cmdBuild([]string{"-horizon", "10", "-out", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-model", model, "-factor", "nope"}); err == nil {
		t.Fatal("unknown sweep factor must fail")
	}
	if err := cmdSweep([]string{"-model", model, "-factor", "period", "-points", "1"}); err == nil {
		t.Fatal("single-point sweep must fail")
	}
}

func TestOptimizeUnknownResponse(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "s.json")
	if err := cmdBuild([]string{"-horizon", "10", "-out", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdOptimize([]string{"-model", model, "-response", "nope"}); err == nil {
		t.Fatal("unknown response must fail")
	}
	if err := cmdANOVA([]string{"-model", model, "-response", "nope"}); err == nil {
		t.Fatal("unknown response must fail")
	}
}
