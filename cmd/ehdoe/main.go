// Command ehdoe is the DoE-based design-flow toolkit of the paper: build
// response surfaces from a designed set of simulations, then explore,
// validate and optimize the captured design space instantly.
//
// Subcommands:
//
//	ehdoe build    [-strategy fixed|adaptive] -design ccf|cci|bbd|lhs|dopt [-runs N] [-horizon 60] [-amp 0.6] -out surfaces.json
//	ehdoe info     -model surfaces.json
//	ehdoe predict  -model surfaces.json -at "period=5,supercap=0.05,vth=3.0,freq_off=0"
//	ehdoe sweep    -model surfaces.json -response packets -factor period [-points 21]
//	ehdoe optimize -model surfaces.json -response stored_energy_J [-min] [-confirm]
//	ehdoe validate -model surfaces.json [-n 10] [-seed 1]
//	ehdoe anova    -model surfaces.json -response stored_energy_J
//
// The build step is the only one that runs simulations; everything after
// it operates on the saved surfaces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/report"
	"repro/internal/rsm"
	"repro/internal/simcache"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "anova":
		err = cmdANOVA(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ehdoe: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ehdoe: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ehdoe <build|info|predict|sweep|optimize|validate|anova> [flags]
run "ehdoe <subcommand> -h" for the flags of each subcommand`)
}

// problem rebuilds the standard 4-factor problem the saved surfaces were
// (and will be) fitted against.
func problem(amp, horizon float64) *core.Problem {
	return core.StandardProblem(amp, horizon)
}

// cacheFlags registers the simulation-cache flags on fs and returns a
// function that wires the configured cache into a problem. A disk tier
// (-cache-dir) makes repeated builds/validations across invocations reuse
// each other's simulations.
func cacheFlags(fs *flag.FlagSet) func(*core.Problem) *simcache.Cache {
	dir := fs.String("cache-dir", "", "directory for the persistent simulation-cache tier (empty = memory only)")
	size := fs.Int("cache-size", 256, "in-memory simulation-cache capacity (entries)")
	return func(p *core.Problem) *simcache.Cache {
		c := simcache.New(simcache.Options{Capacity: *size, Dir: *dir})
		p.Runner = c
		return c
	}
}

// resilienceFlags registers the retry/deadline and fault-injection flags
// on fs and returns a function that applies them to a problem. Apply it
// after the cache wiring: the injector wraps whatever runner the problem
// has, so injected faults hit before the cache (replicated points still
// draw from the schedule).
func resilienceFlags(fs *flag.FlagSet) func(*core.Problem) error {
	retries := fs.Int("run-retries", 2, "max retries per design run after transient simulation faults")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	runTimeout := fs.Duration("run-timeout", 0, "per-simulation-run deadline (0 = unbounded)")
	faultCfg := fault.FlagConfig(fs)
	return func(p *core.Problem) error {
		cfg := faultCfg()
		if err := cfg.Validate(); err != nil {
			return err
		}
		p.Retry = core.RetryPolicy{MaxAttempts: *retries + 1, BaseDelay: *retryBase}
		p.RunTimeout = *runTimeout
		if cfg.Enabled() {
			p.Runner = fault.New(cfg).Wrap(p.Runner)
		}
		return nil
	}
}

// obsFlags registers the observability flags on fs and returns a function
// that builds the command's root context: a run-ID-annotated structured
// logger (simulation, design-run and cache lines all carry the same run
// ID) plus an optional pprof server for profiling long builds.
func obsFlags(fs *flag.FlagSet) func() (context.Context, error) {
	level := fs.String("log-level", "warn", "log level: debug, info, warn or error")
	format := fs.String("log-format", "text", "log format: text or json")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the command runs")
	return func() (context.Context, error) {
		logger, err := obs.NewLogger(os.Stderr, *format, *level)
		if err != nil {
			return nil, err
		}
		ctx, _ := obs.Annotate(context.Background(), logger, "run-", "")
		if *pprofAddr != "" {
			go func() {
				hs := &http.Server{Addr: *pprofAddr, Handler: obs.PprofHandler()}
				if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
					obs.FromContext(ctx).Warn("pprof server failed", "addr", *pprofAddr, "err", err.Error())
				}
			}()
		}
		return ctx, nil
	}
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	strategy := fs.String("strategy", core.StrategyFixed,
		`build strategy: "fixed" simulates the whole -design up front, "adaptive" grows a D-optimal design and stops when the surfaces converge`)
	designName := fs.String("design", "ccf", "experiment design: ccf, cci, bbd, lhs or dopt (fixed strategy only)")
	runs := fs.Int("runs", 0, "run budget for lhs/dopt (default: CCF-equivalent; fixed strategy only)")
	horizon := fs.Float64("horizon", 60, "simulated duration per run (s)")
	amp := fs.Float64("amp", 0.6, "excitation amplitude (m/s²)")
	seed := fs.Int64("seed", 1, "seed for randomized designs")
	workers := fs.Int("workers", 0, "parallel simulation workers (0 = all cores, 1 = serial)")
	out := fs.String("out", "surfaces.json", "output file")
	withCache := cacheFlags(fs)
	withResilience := resilienceFlags(fs)
	withObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := withObs()
	if err != nil {
		return err
	}
	p := problem(*amp, *horizon)
	cache := withCache(p)
	if err := withResilience(p); err != nil {
		return err
	}
	k := len(p.Factors)
	quad := rsm.FullQuadratic(k)

	var ds *core.Dataset
	var s *core.Surfaces
	var adaptive *core.AdaptiveStats
	switch *strategy {
	case core.StrategyFixed:
		design, err := core.NamedDesign(*designName, k, *runs, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("running %d simulations (%s, horizon %.0f s)...\n", design.N(), design.Name, *horizon)
		if ds, err = p.RunDesignContext(ctx, design, *workers); err != nil {
			return err
		}
		if s, err = p.BuildSurfaces(ds, quad); err != nil {
			return err
		}
	case core.StrategyAdaptive:
		// The sequential loop picks its own points, so a design name or run
		// budget here would be silently ignored — reject explicit ones.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "design" || f.Name == "runs" {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("build: %s cannot be combined with -strategy adaptive (the loop sizes the design itself)",
				strings.Join(conflict, ", "))
		}
		fmt.Printf("adaptive build (k=%d, fixed reference %d runs, horizon %.0f s)...\n",
			k, core.FixedEquivalentPoints(k), *horizon)
		res, err := p.RunAdaptive(ctx, core.AdaptiveConfig{Seed: *seed, Workers: *workers})
		if err != nil {
			return err
		}
		ds, s, adaptive = res.Dataset, res.Surfaces, res.Stats
	default:
		return fmt.Errorf("build: unknown strategy %q (want %q or %q)",
			*strategy, core.StrategyFixed, core.StrategyAdaptive)
	}
	saved := s.SaveWithData(ds)
	data, err := saved.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	t := report.NewTable("fitted surfaces", "response", "R2", "RMSE")
	for _, id := range saved.Responses() {
		t.AddRow(string(id), saved.R2[id], saved.RMSE[id])
	}
	t.AddNote("simulation %.0f ms wall (%.0f ms of sim work, %.1f× parallel speedup), fitting %.1f ms; saved to %s",
		float64(ds.SimTime.Milliseconds()), float64(ds.SimWork.Milliseconds()), ds.Speedup(),
		float64(s.FitTime.Microseconds())/1e3, *out)
	if st := cache.Stats(); st.Hits+st.DiskHits+st.DedupHits > 0 {
		t.AddNote("simulation cache: %d hits, %d disk hits, %d deduped, %d misses",
			st.Hits, st.DiskHits, st.DedupHits, st.Misses)
	}
	fmt.Println(t.String())
	if adaptive != nil {
		rt := report.NewTable("adaptive rounds", "round", "added", "points", "min R2", "min adjR2", "min R2pred")
		for _, r := range adaptive.Rounds {
			rt.AddRow(r.Round, r.Added, r.Points, r.MinR2, r.MinAdjR2, r.MinR2Pred)
		}
		rt.AddNote("stopped: %s after %d points (fixed-strategy reference costs %d — %d simulations skipped)",
			adaptive.StopReason, adaptive.PointsSimulated, adaptive.FixedPoints, adaptive.PointsSkipped)
		fmt.Println(rt.String())
	}
	return nil
}

func loadModel(path string) (*core.SavedSurfaces, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return core.DecodeSurfaces(data)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	model := fs.String("model", "surfaces.json", "saved surfaces file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := loadModel(*model)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("surfaces: %s (%d runs, horizon %.0f s)", ss.DesignName, ss.Runs, ss.Horizon),
		"factor", "min", "max", "unit")
	for _, f := range ss.Factors {
		t.AddRow(f.Name, f.Min, f.Max, f.Unit)
	}
	fmt.Println(t.String())
	rt := report.NewTable("responses", "response", "R2", "RMSE")
	for _, id := range ss.Responses() {
		rt.AddRow(string(id), ss.R2[id], ss.RMSE[id])
	}
	fmt.Println(rt.String())
	return nil
}

// parsePoint parses "name=value,name=value" against the saved factors into
// natural units.
func parsePoint(ss *core.SavedSurfaces, spec string) ([]float64, error) {
	nat := make([]float64, len(ss.Factors))
	seen := make([]bool, len(ss.Factors))
	for i, f := range ss.Factors {
		nat[i] = (f.Min + f.Max) / 2 // default: centre
		_ = seen[i]
	}
	if spec == "" {
		return nat, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad assignment %q (want name=value)", kv)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", kv, err)
		}
		found := false
		for i, f := range ss.Factors {
			if f.Name == parts[0] {
				nat[i] = v
				seen[i] = true
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown factor %q", parts[0])
		}
	}
	return nat, nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "surfaces.json", "saved surfaces file")
	at := fs.String("at", "", "design point in natural units, e.g. period=5,supercap=0.05")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := loadModel(*model)
	if err != nil {
		return err
	}
	nat, err := parsePoint(ss, *at)
	if err != nil {
		return err
	}
	t := report.NewTable("prediction", "response", "value")
	for _, id := range ss.Responses() {
		v, err := ss.PredictNatural(id, nat)
		if err != nil {
			return err
		}
		t.AddRow(string(id), v)
	}
	var desc []string
	for i, f := range ss.Factors {
		desc = append(desc, fmt.Sprintf("%s=%.4g%s", f.Name, nat[i], f.Unit))
	}
	t.AddNote("at %s", strings.Join(desc, ", "))
	fmt.Println(t.String())
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	model := fs.String("model", "surfaces.json", "saved surfaces file")
	response := fs.String("response", string(core.RespPackets), "response to sweep")
	factor := fs.String("factor", "", "factor to sweep over its full range")
	points := fs.Int("points", 21, "sweep resolution")
	at := fs.String("at", "", "fixed values for the other factors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := loadModel(*model)
	if err != nil {
		return err
	}
	fi := -1
	for i, f := range ss.Factors {
		if f.Name == *factor {
			fi = i
			break
		}
	}
	if fi < 0 {
		return fmt.Errorf("unknown factor %q", *factor)
	}
	if *points < 2 {
		return fmt.Errorf("need ≥2 points")
	}
	nat, err := parsePoint(ss, *at)
	if err != nil {
		return err
	}
	id := core.ResponseID(*response)
	f := ss.Factors[fi]
	var xs, ys []float64
	for i := 0; i < *points; i++ {
		nat[fi] = f.Min + float64(i)/float64(*points-1)*(f.Max-f.Min)
		v, err := ss.PredictNatural(id, nat)
		if err != nil {
			return err
		}
		xs = append(xs, nat[fi])
		ys = append(ys, v)
	}
	fig := report.NewFigure(fmt.Sprintf("sweep of %s over %s", *response, f.Name), f.Name+"_"+f.Unit, *response)
	if err := fig.Add(string(id), xs, ys); err != nil {
		return err
	}
	fmt.Println(fig.String())
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	model := fs.String("model", "surfaces.json", "saved surfaces file")
	response := fs.String("response", string(core.RespPackets), "response to optimize")
	minimize := fs.Bool("min", false, "minimize instead of maximize")
	confirm := fs.Bool("confirm", false, "confirm the optimum with one fresh simulation")
	amp := fs.Float64("amp", 0.6, "excitation amplitude for the confirming run")
	seed := fs.Int64("seed", 1, "multi-start seed")
	withCache := cacheFlags(fs)
	withResilience := resilienceFlags(fs)
	withObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := withObs()
	if err != nil {
		return err
	}
	ss, err := loadModel(*model)
	if err != nil {
		return err
	}
	id := core.ResponseID(*response)
	if _, ok := ss.Coef[id]; !ok {
		return fmt.Errorf("model has no response %q", id)
	}
	obj := func(x []float64) float64 {
		v, err := ss.Predict(id, x)
		if err != nil {
			return 0
		}
		if *minimize {
			return v
		}
		return -v
	}
	bounds := opt.NewBounds(len(ss.Factors))
	rng := rand.New(rand.NewSource(*seed))
	var best *opt.Result
	for i := 0; i < 6; i++ {
		r, err := opt.NelderMead(obj, bounds, bounds.Random(rng), opt.NelderMeadConfig{MaxIters: 500})
		if err != nil {
			return err
		}
		if best == nil || r.F < best.F {
			best = r
		}
	}
	pred, err := ss.Predict(id, best.X)
	if err != nil {
		return err
	}
	t := report.NewTable("optimum", "factor", "natural", "coded")
	for i, f := range ss.Factors {
		t.AddRow(f.Name, f.Decode(best.X[i]), best.X[i])
	}
	t.AddNote("predicted %s = %.5g (%d surface evaluations)", id, pred, best.Evals)
	if *confirm {
		p := problem(*amp, ss.Horizon)
		withCache(p)
		if err := withResilience(p); err != nil {
			return err
		}
		resp, err := p.ResponsesAtContext(ctx, best.X)
		if err != nil {
			return err
		}
		t.AddNote("confirmed by simulation: %s = %.5g", id, resp[id])
	}
	fmt.Println(t.String())
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	model := fs.String("model", "surfaces.json", "saved surfaces file")
	n := fs.Int("n", 10, "number of fresh validation simulations")
	amp := fs.Float64("amp", 0.6, "excitation amplitude")
	seed := fs.Int64("seed", 1, "validation-point seed")
	withCache := cacheFlags(fs)
	withResilience := resilienceFlags(fs)
	withObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := withObs()
	if err != nil {
		return err
	}
	ss, err := loadModel(*model)
	if err != nil {
		return err
	}
	p := problem(*amp, ss.Horizon)
	withCache(p)
	if err := withResilience(p); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	t := report.NewTable(fmt.Sprintf("validation at %d fresh points", *n),
		"response", "mean_abs_err", "max_abs_err")
	sums := map[core.ResponseID]float64{}
	maxs := map[core.ResponseID]float64{}
	for i := 0; i < *n; i++ {
		x := make([]float64, len(ss.Factors))
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		resp, err := p.ResponsesAtContext(ctx, x)
		if err != nil {
			return err
		}
		for _, id := range ss.Responses() {
			pred, err := ss.Predict(id, x)
			if err != nil {
				return err
			}
			e := pred - resp[id]
			if e < 0 {
				e = -e
			}
			sums[id] += e
			if e > maxs[id] {
				maxs[id] = e
			}
		}
	}
	for _, id := range ss.Responses() {
		t.AddRow(string(id), sums[id]/float64(*n), maxs[id])
	}
	fmt.Println(t.String())
	return nil
}

func cmdANOVA(args []string) error {
	fs := flag.NewFlagSet("anova", flag.ExitOnError)
	model := fs.String("model", "surfaces.json", "saved surfaces file (built with embedded data)")
	response := fs.String("response", string(core.RespStoredEnergy), "response to analyze")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := loadModel(*model)
	if err != nil {
		return err
	}
	fit, err := ss.Refit(core.ResponseID(*response))
	if err != nil {
		return err
	}
	names := make([]string, len(ss.Factors))
	for i, f := range ss.Factors {
		names[i] = f.Name
	}
	t := report.NewTable(fmt.Sprintf("ANOVA of %s", *response), "source", "dof", "SS", "F", "p")
	for _, row := range fit.ANOVA() {
		if row.Source == "regression" {
			t.AddRow(row.Source, row.DoF, row.SS, row.F, row.P)
		} else {
			t.AddRow(row.Source, row.DoF, row.SS, "", "")
		}
	}
	ts := fit.TStats()
	ps := fit.PValues()
	for i, term := range fit.Model.Terms {
		if term.Degree() == 0 {
			continue
		}
		f := ts[i] * ts[i]
		t.AddRow("  "+term.Label(names), 1, f*fit.Sigma2, f, ps[i])
	}
	t.AddNote("R² %.4f, adjusted %.4f, R²-pred %.4f (PRESS %.4g)", fit.R2, fit.AdjR2, fit.R2Pred, fit.PRESS)
	if lof, err := fit.LackOfFitTest(ss.DesignRuns, ss.DataY[core.ResponseID(*response)]); err == nil {
		t.AddNote("lack of fit: F = %.4g, p = %.4g (%d replicate groups)", lof.F, lof.P, lof.Replicates)
	} else {
		t.AddNote("lack of fit unavailable: %v", err)
	}
	if out := fit.OutlierRuns(3); len(out) > 0 {
		t.AddNote("outlying runs (|studentized residual| > 3): %v — consider re-simulating", out)
	}
	fmt.Println(t.String())
	return nil
}
