//go:build race

package main

// raceEnabled reports whether the binary was built with the race detector.
// Instrumented code is a different program performance-wise, so the
// harness skips baseline comparison when it is on.
const raceEnabled = true
