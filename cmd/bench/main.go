// Command bench is the benchmark-regression harness (DESIGN.md §10): it
// measures the repository's hot paths with testing.Benchmark, derives the
// paper-level speedup ratios (fast engine vs reference engine, RSM
// prediction vs simulation), writes the whole report as BENCH_<n>.json,
// and — when given a committed baseline — fails with a non-zero exit if
// any benchmark regressed past the tolerance band.
//
//	go run ./cmd/bench -out BENCH_10.json -baseline bench_baseline.json -tolerance 0.25
//
// Comparisons use calibration-normalized time (see internal/benchkit), so
// a baseline recorded on one machine remains meaningful on another. Under
// the race detector every measurement is a different program; the harness
// still writes a report but skips the baseline comparison. -quick drops
// the slow fleet and sustained-QPS benchmarks for CI smoke runs (-serve
// keeps sustained-QPS even under -quick); the baseline comparison simply
// skips metrics the quick report does not carry.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/la"
	"repro/internal/node"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

// refHorizon keeps the Newton-Raphson reference engine's share of the
// wall clock small; its ns/op is rescaled to a full simulated second
// before the fast-vs-reference ratio is formed.
const refHorizon = 0.1

var (
	sinkResult  *sim.Result
	sinkFloat   float64
	sinkMatrix  *la.Matrix
	sinkString  string
	sinkPredict []float64
)

func main() {
	out := flag.String("out", "BENCH_10.json", "report output path")
	baseline := flag.String("baseline", "", "baseline report to compare against (empty: no comparison)")
	tolerance := flag.Float64("tolerance", 0.25, "fractional regression tolerance (0.25 = +25%)")
	quick := flag.Bool("quick", false, "skip the slow fleet and sustained-QPS benchmarks (CI smoke mode)")
	serve := flag.Bool("serve", false, "keep the sustained-QPS serving benchmark even under -quick")
	flag.Parse()

	if err := run(*out, *baseline, *tolerance, *quick, *serve); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out, baseline string, tolerance float64, quick, serve bool) error {
	r := benchkit.NewReport()
	fmt.Printf("calibration: %.0f ns/op\n", r.CalibrationNs)

	d := sim.DefaultDesign()
	src := vibration.Sine{Amplitude: 0.6, Freq: d.Harv.ResonantFreq(d.Harv.GapMax)}

	// --- simulation engines -------------------------------------------------
	fastCfg := sim.Config{Horizon: 1, Source: src}
	fast := measure(r, "sim/RunFast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.RunFast(d, fastCfg)
			if err != nil {
				b.Fatal(err)
			}
			sinkResult = res
		}
	})

	dTuned := d
	tc := tuner.DefaultConfig()
	tc.Interval = 0.2
	dTuned.Tuner = &tc
	measure(r, "sim/RunFastTuned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.RunFast(dTuned, fastCfg)
			if err != nil {
				b.Fatal(err)
			}
			sinkResult = res
		}
	})

	refCfg := sim.Config{Horizon: refHorizon, Source: src}
	ref := measure(r, "sim/RunReference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.RunReference(d, refCfg)
			if err != nil {
				b.Fatal(err)
			}
			sinkResult = res
		}
	})

	// Both rescaled to ns per simulated second before forming the ratio.
	if fastNs := float64(fast.NsPerOp()); fastNs > 0 {
		r.SetSpeedup("fast_vs_reference", float64(ref.NsPerOp())/refHorizon/fastNs)
	}

	// --- batch engine vs sequential fast -----------------------------------
	// The tentpole workload: K tuned design points sharing one harvester
	// (so they land in one model group) under a stepped excitation that
	// forces retunes, stepped in lockstep by RunBatch vs one by one with
	// RunFast. batch_Kv1 is the whole-build wall-time ratio.
	const batchLanes = 16
	bbase := d
	bbase.InitialStoreV = 3.5
	btc := tuner.DefaultConfig()
	btc.Interval = 1
	btc.EstimatorWin = 0.5
	btc.ActuatorSpeed = 2e-3
	bbase.Tuner = &btc
	stepped, err := vibration.NewSteppedSine(0.6, []vibration.FreqStep{
		{At: 0, Freq: 70}, {At: 4, Freq: 50}, {At: 8, Freq: 70},
	})
	if err != nil {
		return fmt.Errorf("building stepped source: %w", err)
	}
	bcfg := sim.Config{Horizon: 12, Source: stepped}
	designs := batchVariants(bbase, batchLanes)
	seq := measure(r, "sim/RunFastSeq16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bd := range designs {
				res, err := sim.RunFast(bd, bcfg)
				if err != nil {
					b.Fatal(err)
				}
				sinkResult = res
			}
		}
	})
	batch := measure(r, "sim/RunBatch16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, err := sim.RunBatch(designs, bcfg)
			if err != nil {
				b.Fatal(err)
			}
			sinkResult = results[0]
		}
	})
	if batchNs := float64(batch.NsPerOp()); batchNs > 0 {
		r.SetSpeedup("batch_Kv1", float64(seq.NsPerOp())/batchNs)
	}

	// --- linear-algebra kernels --------------------------------------------
	ew := la.NewExpmWorkspace(5)
	ea := la.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			ea.Set(i, j, 0.01*float64((i*5+j)%7-3))
		}
	}
	measure(r, "la/ExpmWorkspace5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := ew.Compute(ea)
			if err != nil {
				b.Fatal(err)
			}
			sinkMatrix = m
		}
	})

	zw := la.NewZOHWorkspace(3, 2)
	za := la.NewMatrixFrom(3, 3, []float64{0, 1, 0, -1.6e3 / 0.02, -3, -210, 0, 4200, -5.2e6})
	zb := la.NewMatrixFrom(3, 2, []float64{0, 0, -1, 0, 0, 0})
	measure(r, "la/ZOHWorkspace3x2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ad, _, err := zw.Discretize(za, zb, 1e-3)
			if err != nil {
				b.Fatal(err)
			}
			sinkMatrix = ad
		}
	})

	// --- cache key fingerprinting ------------------------------------------
	measure(r, "simcache/Fingerprint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key, err := simcache.Fingerprint("fast", d, fastCfg)
			if err != nil {
				b.Fatal(err)
			}
			sinkString = key
		}
	})

	// --- RSM prediction vs simulation --------------------------------------
	// Fit the standard four-factor problem once (a face-centered composite,
	// the paper's workhorse design), then measure batch prediction over a
	// coded grid. The rsm_vs_sim ratio compares the cost of answering one
	// design point from the fitted surface against simulating it.
	saved, err := fitSurfaces()
	if err != nil {
		return fmt.Errorf("fitting surfaces for rsm benchmark: %w", err)
	}
	grid := codedGrid(4, 3) // 3^4 = 81 points
	pred := measure(r, "rsm/PredictBatch81", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ys, err := saved.PredictBatch(core.RespHarvestedPower, grid)
			if err != nil {
				b.Fatal(err)
			}
			sinkPredict = ys
		}
	})
	if perPoint := float64(pred.NsPerOp()) / float64(len(grid)); perPoint > 0 {
		r.SetSpeedup("rsm_vs_sim", float64(fast.NsPerOp())/perPoint)
	}

	// --- adaptive vs fixed DoE builds (see adaptive.go) ---------------------
	// Cheap enough to keep in quick mode: it is the fewer-sims-per-model
	// gate of the adaptive strategy.
	if err := benchAdaptiveSavings(r); err != nil {
		return err
	}

	// --- sustained-QPS serving (see serveload.go) ---------------------------
	// The overload-resilience gate. A two-second open-loop run is more than
	// CI smoke wants, so -quick skips it unless -serve keeps it explicitly.
	if quick && !serve {
		fmt.Println("quick mode: skipping sustained-QPS benchmark (-serve keeps it)")
	} else if err := benchSustainedQPS(r); err != nil {
		return err
	}

	// --- distributed fleet scaling (see cluster.go) -------------------------
	if quick {
		fmt.Println("quick mode: skipping fleet benchmarks")
	} else if err := benchClusterScaling(r); err != nil {
		return err
	}

	for name, m := range r.Benchmarks {
		fmt.Printf("%-24s %12.0f ns/op %8.0f allocs/op %10.0f B/op\n",
			name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	for name, v := range r.Speedups {
		fmt.Printf("speedup %-18s %.1fx\n", name, v)
	}

	if err := r.WriteFile(out); err != nil {
		return err
	}
	fmt.Println("wrote", out)

	if baseline == "" {
		return nil
	}
	if raceEnabled {
		fmt.Println("race detector active: skipping baseline comparison")
		return nil
	}
	base, err := benchkit.Load(baseline)
	if err != nil {
		return err
	}
	regs := benchkit.Compare(base, r, tolerance)
	if len(regs) == 0 {
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", baseline, tolerance*100)
		return nil
	}
	for _, reg := range regs {
		fmt.Fprintln(os.Stderr, "REGRESSION:", reg)
	}
	return fmt.Errorf("%d benchmark(s) regressed past the %.0f%% band", len(regs), tolerance*100)
}

// measure runs one benchmark, records it in the report, and returns the
// raw result for derived ratios.
func measure(r *benchkit.Report, name string, fn func(*testing.B)) testing.BenchmarkResult {
	br := testing.Benchmark(fn)
	r.Add(name, br)
	return br
}

// batchVariants derives k design points from base that differ only on the
// slow side (reporting period, threshold, initial charge) — the shape of a
// real DoE sweep over node parameters: every lane shares the harvester's
// model group while tracing a distinct trajectory. Initial charge stays
// above the tuner's MinStoreV so tuning is live in every lane.
func batchVariants(base sim.Design, k int) []sim.Design {
	designs := make([]sim.Design, k)
	for i := range designs {
		bd := base
		bd.Node.Period = base.Node.Period + 0.5*float64(i)
		bd.Policy = node.ThresholdPolicy{VThreshold: 3.0 + 0.05*float64(i%3)}
		bd.InitialStoreV = base.InitialStoreV - 0.05*float64(i%2)
		designs[i] = bd
	}
	return designs
}

// fitSurfaces builds the saved response surfaces the prediction benchmark
// queries: the standard problem on a face-centered composite design.
func fitSurfaces() (*core.SavedSurfaces, error) {
	p := core.StandardProblem(0.6, 1)
	design, err := core.NamedDesign("ccf", len(p.Factors), 0, 1)
	if err != nil {
		return nil, err
	}
	ds, err := p.RunDesign(design)
	if err != nil {
		return nil, err
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		return nil, err
	}
	return s.Save(design.Name, design.N()), nil
}

// codedGrid returns the full factorial of levels per factor over the coded
// cube [-1, 1]^k.
func codedGrid(k, levels int) [][]float64 {
	n := 1
	for i := 0; i < k; i++ {
		n *= levels
	}
	pts := make([][]float64, n)
	for i := range pts {
		pt := make([]float64, k)
		rem := i
		for j := 0; j < k; j++ {
			pt[j] = -1 + 2*float64(rem%levels)/float64(levels-1)
			rem /= levels
		}
		pts[i] = pt
	}
	return pts
}
