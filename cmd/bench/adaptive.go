package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/rsm"
	"repro/internal/simcache"
)

// Gates of the adaptive-vs-fixed comparison: the sequential build must
// skip at least minSavings of the fixed reference's simulations on every
// workload, and its held-out validation R² may trail the fixed build's by
// at most valTol — savings that cost model quality are not savings.
const (
	minSavings = 0.40
	valTol     = 0.02
)

// benchAdaptiveSavings measures what the sequential D-optimal build
// strategy saves over the fixed-design flow. Two six-factor scenario-grid
// workloads (WideProblem subregions centred on the T1 and T6 excitation
// levels) are each built twice — fixed CCF reference and adaptive — and
// both models are scored on the same 100 held-out simulations. The
// simulation-count savings go into the report as the drift-gated
// adaptive_sim_savings ratio; the per-workload points and validation R²
// land as ungated stats.
func benchAdaptiveSavings(r *benchkit.Report) error {
	ctx := context.Background()
	workloads := []struct {
		name string
		ampC float64 // coded centre of the amp factor (0 → 0.8, 0.5 → 1.0 m/s²)
	}{
		{"amp_mid", 0},
		{"amp_high", 0.5},
	}
	var sumSavings float64
	for _, w := range workloads {
		p, err := adaptiveWorkload(w.ampC)
		if err != nil {
			return err
		}
		k := len(p.Factors)

		// Held-out truth: 100 uniform coded points, simulated once.
		pts := randomCoded(k, 100, 99)
		truth := map[core.ResponseID][]float64{}
		for _, x := range pts {
			resp, err := p.ResponsesAtContext(ctx, x)
			if err != nil {
				return fmt.Errorf("adaptive bench: validation sim: %w", err)
			}
			for _, id := range p.Responses {
				truth[id] = append(truth[id], resp[id])
			}
		}

		// Fixed reference: the full CCF design, built as `ehdoe build` would.
		design, err := core.NamedDesign("ccf", k, 0, 4)
		if err != nil {
			return err
		}
		ds, err := p.RunDesignContext(ctx, design, 0)
		if err != nil {
			return fmt.Errorf("adaptive bench: fixed build: %w", err)
		}
		fixed, err := p.BuildSurfaces(ds, rsm.FullQuadratic(k))
		if err != nil {
			return err
		}
		fixedVal, err := minValidationR2(p, fixed, pts, truth)
		if err != nil {
			return err
		}

		// Adaptive build on a fresh problem (own cache) so its simulation
		// count is not subsidised by the fixed build's cache entries.
		p2, err := adaptiveWorkload(w.ampC)
		if err != nil {
			return err
		}
		res, err := p2.RunAdaptive(ctx, core.AdaptiveConfig{Seed: 4})
		if err != nil {
			return fmt.Errorf("adaptive bench: adaptive build: %w", err)
		}
		adaptVal, err := minValidationR2(p2, res.Surfaces, pts, truth)
		if err != nil {
			return err
		}

		st := res.Stats
		savings := 1 - float64(st.PointsSimulated)/float64(st.FixedPoints)
		fmt.Printf("adaptive %-9s %d of %d points (%.1f%% saved, stop: %s), val R²min adaptive %.4f vs fixed %.4f\n",
			w.name, st.PointsSimulated, st.FixedPoints, 100*savings, st.StopReason, adaptVal, fixedVal)
		if st.StopReason != core.StopConverged {
			return fmt.Errorf("adaptive bench: %s stopped on %q, not convergence — the lack-of-fit/R² rule never fired",
				w.name, st.StopReason)
		}
		if savings < minSavings {
			return fmt.Errorf("adaptive bench: %s saved only %.1f%% of %d simulations (gate: ≥%.0f%%)",
				w.name, 100*savings, st.FixedPoints, 100*minSavings)
		}
		if adaptVal < fixedVal-valTol {
			return fmt.Errorf("adaptive bench: %s validation R² %.4f trails fixed %.4f by more than %.2f",
				w.name, adaptVal, fixedVal, valTol)
		}
		r.SetStat("adaptive_points_"+w.name, float64(st.PointsSimulated))
		r.SetStat("adaptive_valr2_"+w.name, adaptVal)
		r.SetStat("fixed_valr2_"+w.name, fixedVal)
		sumSavings += savings
	}
	r.SetSpeedup("adaptive_sim_savings", sumSavings/float64(len(workloads)))
	return nil
}

// adaptiveWorkload is one benchmark workload: the six-factor wide problem
// shrunk to 40% of its range around a coded excitation-amplitude centre —
// the locality a sequential-RSM flow would actually refine in.
func adaptiveWorkload(ampC float64) (*core.Problem, error) {
	p, err := core.WideProblem(1.0).Subregion([]float64{0, 0, 0, 0, ampC, 0}, 0.4)
	if err != nil {
		return nil, err
	}
	p.Runner = simcache.New(simcache.Options{})
	return p, nil
}

// randomCoded returns n uniform points in the coded cube [-1, 1]^k.
func randomCoded(k, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		x := make([]float64, k)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		pts[i] = x
	}
	return pts
}

// minValidationR2 scores surfaces against held-out simulations and returns
// the worst R² across the problem's responses.
func minValidationR2(p *core.Problem, s *core.Surfaces, pts [][]float64, truth map[core.ResponseID][]float64) (float64, error) {
	min := 2.0
	for _, id := range p.Responses {
		ys := truth[id]
		var mean float64
		for _, y := range ys {
			mean += y
		}
		mean /= float64(len(ys))
		var ssErr, ssTot float64
		for i, x := range pts {
			pred, err := s.Predict(id, x)
			if err != nil {
				return 0, err
			}
			ssErr += (ys[i] - pred) * (ys[i] - pred)
			ssTot += (ys[i] - mean) * (ys[i] - mean)
		}
		if r2 := 1 - ssErr/ssTot; r2 < min {
			min = r2
		}
	}
	return min, nil
}
