package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/apiclient"
	"repro/internal/benchkit"
	"repro/internal/load"
	"repro/internal/serve"
)

// Sustained-QPS serving benchmark: an in-process ehdoed server with a
// deliberately tight admission limit under an open-loop predict stream.
// Three numbers land in the report:
//
//   - serve/SustainedPredict_p50 (benchmark, drift-gated): admitted median
//     latency through the full middleware stack (admission, memo lookup,
//     instrumentation), normalized like every other benchmark so the gate
//     survives machine changes.
//   - sustained_goodput_ratio (speedup, drift-gated): goodput over offered.
//     A healthy server clears this load without shedding (ratio 1.0); if a
//     serving regression pushes latency past the admission limits, sheds
//     eat into goodput, the ratio falls, and the gate trips.
//   - sustained_* stats (ungated): p99, achieved QPS, shed rate — tail
//     numbers too noisy on shared CI runners to gate, recorded for trend.
const (
	sustainedQPS      = 400
	sustainedDuration = 2 * time.Second
)

func benchSustainedQPS(r *benchkit.Report) error {
	saved, err := fitSurfaces()
	if err != nil {
		return fmt.Errorf("fitting surfaces for sustained-qps benchmark: %w", err)
	}
	srv, err := serve.New(serve.Config{
		Load: serve.LoadConfig{
			// Tight: 4 lanes clear 400 QPS only while predict stays fast,
			// so a latency regression converts directly into sheds.
			Surface:    serve.EndpointLimit{MaxConcurrent: 4, MaxQueue: 8, MaxWait: 5 * time.Millisecond},
			RetryAfter: time.Second,
		},
	})
	if err != nil {
		return err
	}
	srv.Registry().Set("bench", saved)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(5 * time.Second)
	}()

	client := apiclient.New(ts.URL, apiclient.Options{MaxAttempts: 1})
	factors := saved.Factors
	var n atomic.Int64
	target := load.Target{
		Name:   "predict",
		Weight: 1,
		Do: func(ctx context.Context) (int, error) {
			seq := n.Add(1)
			pt := make([]float64, len(factors))
			for j, f := range factors {
				frac := float64((seq*31+int64(j)*17)%101) / 100
				pt[j] = f.Min + frac*(f.Max-f.Min)
			}
			res, err := client.Do(ctx, http.MethodPost, "/v1/predict",
				serve.PredictRequest{Model: "bench", Point: pt})
			if err != nil {
				return 0, err
			}
			return res.Status, nil
		},
	}
	rep, err := load.Run(context.Background(), load.GenConfig{
		QPS:      sustainedQPS,
		Duration: sustainedDuration,
		Targets:  []load.Target{target},
		Seed:     1,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		return err
	}
	if rep.Served == 0 {
		return fmt.Errorf("sustained-qps benchmark served nothing (offered %d, failed %d)", rep.Offered, rep.Failed)
	}

	r.AddMetric("serve/SustainedPredict_p50", benchkit.Metric{NsPerOp: rep.Latency.P50 * 1e6})
	if rep.Offered > 0 {
		r.SetSpeedup("sustained_goodput_ratio", float64(rep.Served)/float64(rep.Offered))
	}
	r.SetStat("sustained_p99_ms", rep.Latency.P99)
	r.SetStat("sustained_offered_qps", rep.OfferedQPS)
	r.SetStat("sustained_goodput_qps", rep.GoodputQPS)
	r.SetStat("sustained_shed_rate", rep.ShedRate)
	fmt.Printf("sustained: offered %.0f qps, goodput %.0f qps, shed %.1f%%, p50 %.2fms, p99 %.2fms\n",
		rep.OfferedQPS, rep.GoodputQPS, rep.ShedRate*100, rep.Latency.P50, rep.Latency.P99)
	return nil
}
