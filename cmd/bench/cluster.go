package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// The fleet-scaling benchmark measures the distributed-build fabric
// (internal/cluster): one whole shard-and-gather cycle of a 27-point
// face-centered composite over an httptest fleet, once with a single
// worker and once with fleetWorkers. The fake engine is latency-bound —
// a fixed sleep per point — because an in-process fleet shares this
// machine's CPUs; in the deployed topology every simnode burns its own
// cores and the coordinator's whole job is overlapping that latency, so
// the 1-vs-N ratio here isolates exactly what the protocol adds.
const (
	fleetWorkers      = 4
	fleetPointLatency = 2 * time.Millisecond
)

var sinkDataset *core.Dataset

// fleetBenchProblem is the deterministic fake-engine factory the bench
// workers run: closed-form responses, a fixed per-point sleep, and no
// cache so every point pays full latency on every iteration.
func fleetBenchProblem(excite, horizon float64) *core.Problem {
	p := core.StandardProblem(excite, horizon)
	p.Engine = func(d sim.Design, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(fleetPointLatency)
		r := &sim.Result{
			AvgHarvestedPower: d.Node.Period * 1e-6,
			StoredEnergyEnd:   d.Store.C,
			FinalStoreV:       3,
			UptimeFraction:    d.Store.C * 5,
			NetEnergyMargin:   1e-3 * d.Node.Period,
		}
		r.Node.Packets = int(d.Node.Period)
		r.Node.FirstTxTime = d.Node.Period / 2
		return r, nil
	}
	p.EngineName = "benchfleet"
	p.Runner = simcache.Direct{}
	return p
}

// benchFleet stands up a coordinator plus n workers, measures
// Coordinator.RunDesign over the standard ccf design, then drains the
// fleet. The returned result feeds the fleet_Nv1_workers speedup.
func benchFleet(r *benchkit.Report, name string, n int) (testing.BenchmarkResult, error) {
	coord := cluster.NewCoordinator(cluster.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		LeaseTimeout:      time.Minute,
		LeasePoints:       2,
		PollInterval:      time.Millisecond,
		Tick:              10 * time.Millisecond,
	})
	defer coord.Shutdown()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	errcs := make([]chan error, 0, n)
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("bench-%dw-%d", n, i),
			Problem:     fleetBenchProblem,
			Concurrency: 1,
			Heartbeat:   10 * time.Millisecond,
			Poll:        time.Millisecond,
		})
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		errc := make(chan error, 1)
		go func() { errc <- w.Run(context.Background()) }()
		errcs = append(errcs, errc)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.LiveWorkers() < n {
		if time.Now().After(deadline) {
			return testing.BenchmarkResult{}, fmt.Errorf("only %d/%d bench workers registered", coord.LiveWorkers(), n)
		}
		time.Sleep(time.Millisecond)
	}

	design, err := core.NamedDesign("ccf", 4, 0, 1)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	spec := cluster.JobSpec{ // ID stays empty: the coordinator mints one per build
		Excite:    0.6,
		Horizon:   1,
		Responses: fleetBenchProblem(0.6, 1).Responses,
	}
	br := measure(r, name, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := coord.RunDesign(context.Background(), spec, design)
			if err != nil {
				b.Fatal(err)
			}
			sinkDataset = ds
		}
	})

	coord.Shutdown()
	for i, errc := range errcs {
		select {
		case err := <-errc:
			if err != nil {
				return br, fmt.Errorf("bench worker %d exited dirty: %w", i, err)
			}
		case <-time.After(10 * time.Second):
			return br, fmt.Errorf("bench worker %d never drained", i)
		}
	}
	return br, nil
}

// benchClusterScaling runs the 1-worker and fleetWorkers-worker
// measurements and records their ratio as the fleet-scaling speedup, then
// the repeated-point measurement over a cache-sharded fleet.
func benchClusterScaling(r *benchkit.Report) error {
	one, err := benchFleet(r, "cluster/FleetBuild1Worker", 1)
	if err != nil {
		return fmt.Errorf("fleet bench (1 worker): %w", err)
	}
	name := fmt.Sprintf("cluster/FleetBuild%dWorkers", fleetWorkers)
	many, err := benchFleet(r, name, fleetWorkers)
	if err != nil {
		return fmt.Errorf("fleet bench (%d workers): %w", fleetWorkers, err)
	}
	if manyNs := float64(many.NsPerOp()); manyNs > 0 {
		r.SetSpeedup(fmt.Sprintf("fleet_%dv1_workers", fleetWorkers),
			float64(one.NsPerOp())/manyNs)
	}
	if err := benchFleetRepeated(r, many); err != nil {
		return fmt.Errorf("fleet bench (repeated points): %w", err)
	}
	return nil
}

// fleetCachedBenchProblem is fleetBenchProblem with the Runner left nil, so
// each bench worker fronts the engine with its own simcache — the
// configuration the sharded cache tier needs.
func fleetCachedBenchProblem(excite, horizon float64) *core.Problem {
	p := fleetBenchProblem(excite, horizon)
	p.Runner = nil
	return p
}

// benchFleetRepeated measures a repeated-point fleet build over a
// cache-sharded fleet: the first (unmeasured) build simulates each unique
// point exactly once fleet-wide, then every measured repeat is answered
// from worker caches and peer fetches — no engine latency at all. The
// ratio against the cache-less fleetWorkers measurement is recorded as the
// fleet_repeat_cache speedup.
func benchFleetRepeated(r *benchkit.Report, baseline testing.BenchmarkResult) error {
	coord := cluster.NewCoordinator(cluster.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		LeaseTimeout:      time.Minute,
		LeasePoints:       2,
		PollInterval:      time.Millisecond,
		Tick:              10 * time.Millisecond,
	})
	defer coord.Shutdown()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	errcs := make([]chan error, 0, fleetWorkers)
	for i := 0; i < fleetWorkers; i++ {
		cache := simcache.New(simcache.Options{Capacity: 256})
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("bench-repeat-%d", i),
			Problem:     fleetCachedBenchProblem,
			Runner:      cache,
			Cache:       cache,
			PeerAddr:    "127.0.0.1:0",
			Concurrency: 1,
			Heartbeat:   10 * time.Millisecond,
			Poll:        time.Millisecond,
		})
		if err != nil {
			return err
		}
		errc := make(chan error, 1)
		go func() { errc <- w.Run(context.Background()) }()
		errcs = append(errcs, errc)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.LiveWorkers() < fleetWorkers {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d/%d repeat-bench workers registered", coord.LiveWorkers(), fleetWorkers)
		}
		time.Sleep(time.Millisecond)
	}

	design, err := core.NamedDesign("ccf", 4, 0, 1)
	if err != nil {
		return err
	}
	spec := cluster.JobSpec{
		Excite:    0.6,
		Horizon:   1,
		Responses: fleetCachedBenchProblem(0.6, 1).Responses,
	}
	// Warm build: populates the sharded fleet cache.
	if _, err := coord.RunDesign(context.Background(), spec, design); err != nil {
		return err
	}
	br := measure(r, "cluster/FleetBuildRepeated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := coord.RunDesign(context.Background(), spec, design)
			if err != nil {
				b.Fatal(err)
			}
			sinkDataset = ds
		}
	})

	coord.Shutdown()
	for i, errc := range errcs {
		select {
		case err := <-errc:
			if err != nil {
				return fmt.Errorf("repeat-bench worker %d exited dirty: %w", i, err)
			}
		case <-time.After(10 * time.Second):
			return fmt.Errorf("repeat-bench worker %d never drained", i)
		}
	}
	if repNs := float64(br.NsPerOp()); repNs > 0 && baseline.NsPerOp() > 0 {
		r.SetSpeedup("fleet_repeat_cache", float64(baseline.NsPerOp())/repNs)
	}
	return nil
}
