// Command ehdoed is the surrogate-serving daemon: it keeps a registry of
// fitted response-surface sets in memory and serves predictions, sweeps,
// optimizations and validations over HTTP while DoE builds run as
// background jobs on a worker pool.
//
//	ehdoed -addr :8080 -models ./models -queue 8
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz              liveness + drain state + model count
//	GET    /metrics              Prometheus text exposition (plaintext)
//	GET    /v1/spec              machine-readable API specification
//	GET    /v1/models            registered models
//	GET    /v1/models/{name}     one model: factors, R², RMSE
//	PUT    /v1/models/{name}     upload a saved-surfaces JSON (hot swap)
//	DELETE /v1/models/{name}     unregister
//	POST   /v1/predict           single/batch predictions, natural or coded units
//	POST   /v1/sweep             1-D sweep of one response over one factor
//	POST   /v1/optimize          Nelder–Mead optimum on the surface
//	POST   /v1/validate          confirming simulations vs surface predictions
//	POST   /v1/build             enqueue an async DoE build job ("pool": "cluster" shards it across the worker fleet)
//	GET    /v1/jobs              all jobs
//	GET    /v1/jobs/{id}         one job's status
//	POST   /v1/cluster/register  worker fleet: join (simnode -serve dials these)
//	POST   /v1/cluster/heartbeat worker fleet: liveness
//	POST   /v1/cluster/lease     worker fleet: pull design points
//	POST   /v1/cluster/results   worker fleet: report a finished lease
//	POST   /v1/cluster/deregister worker fleet: clean goodbye
//	GET    /v1/cluster/workers   worker fleet health view
//	GET    /v1/cluster/cache     sharded cache tier: shard map + fleet cache counters
//
// Overload behavior: the synchronous model endpoints sit behind
// per-endpoint admission control (-admission, -limit-surface,
// -limit-validate, -limit-wait) — saturated endpoints shed with a typed
// 429 "overloaded" envelope and a Retry-After hint instead of queueing
// without bound, and repeated predict/sweep questions are answered from a
// model-versioned response memo (-memo-size). See README "Overload
// behavior".
//
// Observability: every request gets (or keeps) an X-Request-ID; the same
// ID threads the access log, build-job transitions and simulation-run
// lines. -log-format json emits machine-parseable lines, -log-level debug
// adds per-simulation and cache-decision detail, and -pprof mounts
// net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM shut the daemon down gracefully: /healthz flips to
// draining, the listener drains, queued builds are cancelled, and the
// in-flight build gets -grace to finish before its context is cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/simcache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	models := flag.String("models", "", "directory of saved-surfaces *.json to load at startup")
	queue := flag.Int("queue", 8, "build-job queue capacity")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight builds")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent simulation-cache tier (empty = memory only)")
	cacheSize := flag.Int("cache-size", 512, "in-memory simulation-cache capacity (entries)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	readTimeout := flag.Duration("read-timeout", 60*time.Second, "max duration for reading an entire request (slowloris guard)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "max keep-alive idle time per connection")
	jobTimeout := flag.Duration("job-timeout", 0, "per-build-job deadline; also caps request timeout_s (0 = unbounded)")
	runTimeout := flag.Duration("run-timeout", 0, "per-simulation-run deadline within a build (0 = unbounded)")
	runRetries := flag.Int("run-retries", 2, "max retries per design run after transient simulation faults")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 2*time.Second, "worker-fleet heartbeat interval advertised to simnode workers")
	clusterLeaseTimeout := flag.Duration("cluster-lease-timeout", 60*time.Second, "worker-fleet lease age past which slow leases are stolen")
	clusterLeasePoints := flag.Int("cluster-lease-points", 4, "max design points per worker-fleet lease")
	strictAPI := flag.Bool("strict-api", false, "reject deprecated request fields (the legacy \"amp\" alias) with code bad_field")
	admission := flag.Bool("admission", true, "per-endpoint admission control (load shedding with Retry-After)")
	limitSurface := flag.Int("limit-surface", 0, "max concurrent surface requests (predict/sweep/optimize) per endpoint (0 = 4×GOMAXPROCS)")
	limitValidate := flag.Int("limit-validate", 0, "max concurrent validate requests (0 = GOMAXPROCS)")
	limitWait := flag.Duration("limit-wait", 0, "max queue wait before a surface request is shed (0 = built-in default)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
	memoSize := flag.Int("memo-size", 512, "response-memo capacity for predict/sweep, entries (negative disables)")
	faultCfg := fault.FlagConfig(flag.CommandLine)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ehdoed: %v\n", err)
		os.Exit(1)
	}

	fcfg := faultCfg()
	if err := fcfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ehdoed: %v\n", err)
		os.Exit(1)
	}
	var inj *fault.Injector
	if fcfg.Enabled() {
		inj = fault.New(fcfg)
		logger.Warn("fault injection enabled", "seed", fcfg.Seed,
			"p_transient", fcfg.PTransient, "p_permanent", fcfg.PPermanent,
			"p_panic", fcfg.PPanic, "p_nan", fcfg.PNaN, "p_latency", fcfg.PLatency)
	}

	cache := simcache.New(simcache.Options{Capacity: *cacheSize, Dir: *cacheDir})
	// The problem factory wires the resilience policy (and the optional
	// fault injector, in front of the cache) into every build/validate.
	problem := func(amp, horizon float64) *core.Problem {
		p := core.StandardProblem(amp, horizon)
		p.Retry = core.RetryPolicy{MaxAttempts: *runRetries + 1, BaseDelay: *retryBase}
		p.RunTimeout = *runTimeout
		var runner simcache.Runner = cache
		if inj != nil {
			runner = inj.Wrap(cache)
		}
		p.Runner = runner
		return p
	}
	srv, err := serve.New(serve.Config{
		ModelsDir:   *models,
		QueueCap:    *queue,
		Problem:     problem,
		Cache:       cache,
		Logger:      logger,
		EnablePprof: *pprof,
		JobTimeout:  *jobTimeout,
		StrictAPI:   *strictAPI,
		Load: serve.LoadConfig{
			Disable:      !*admission,
			Surface:      serve.EndpointLimit{MaxConcurrent: *limitSurface, MaxWait: *limitWait},
			Validate:     serve.EndpointLimit{MaxConcurrent: *limitValidate},
			RetryAfter:   *retryAfter,
			MemoCapacity: *memoSize,
		},
		Cluster: cluster.Config{
			HeartbeatInterval: *clusterHeartbeat,
			LeaseTimeout:      *clusterLeaseTimeout,
			LeasePoints:       *clusterLeasePoints,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ehdoed: %v\n", err)
		os.Exit(1)
	}
	logger.Info("ehdoed serving", "models", srv.Registry().Len(), "addr", *addr, "pprof", *pprof)

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slowloris hardening: bound header receipt, whole-request reads
		// and keep-alive idling so stuck clients can't pin connections.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ehdoed: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String(), "grace_s", grace.Seconds())
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("listener shutdown", "err", err.Error())
		}
		cancel()
		srv.Shutdown(*grace)
		logger.Info("ehdoed stopped")
	}
}
