package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/simcache"
)

// runWorker is simnode's daemon mode (`simnode -serve`): the process joins
// an ehdoed coordinator's fleet, heartbeats, pulls design-point leases and
// streams results back until the context ends, the coordinator drains, or
// an injected kill takes it down. Each leased point runs through the same
// StandardProblem + retry/timeout policy a local build would use, fronted
// by the simulation cache (and the optional fault injector). The cache
// joins the fleet's sharded tier: misses consult the owning peer before
// simulating, and with -peer-listen set this worker serves its owned key
// ranges to the rest of the fleet, so identical points dedup fleet-wide.
func runWorker(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simnode -serve", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required), e.g. http://localhost:8080")
	id := fs.String("id", "", "fleet-unique worker ID (empty mints one)")
	concurrency := fs.Int("concurrency", 0, "leased points run in parallel (default: number of CPUs)")
	maxLease := fs.Int("max-lease", 0, "max design points requested per lease (0 = coordinator's default)")
	cacheDir := fs.String("cache-dir", "", "directory for the persistent simulation-cache tier (empty = memory only)")
	cacheSize := fs.Int("cache-size", 512, "in-memory simulation-cache capacity (entries)")
	peerListen := fs.String("peer-listen", "", "peer-cache listen address (e.g. :9090); empty = fetch from peers but own no shard ranges")
	peerAdvertise := fs.String("peer-advertise", "", "peer-cache base URL advertised to the fleet (default http://<peer-listen addr>)")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "peer cache fetch/replication deadline; on expiry the point simulates locally")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	runTimeout := fs.Duration("run-timeout", 0, "per-simulation-run deadline (0 = unbounded)")
	runRetries := fs.Int("run-retries", 2, "max retries per design run after transient simulation faults")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	faultCfg := fault.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("-serve needs -coordinator <url>")
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	fcfg := faultCfg()
	if err := fcfg.Validate(); err != nil {
		return err
	}
	var inj *fault.Injector
	if fcfg.Enabled() {
		inj = fault.New(fcfg)
		logger.Warn("fault injection enabled", "seed", fcfg.Seed, "p_kill", fcfg.PKill,
			"p_transient", fcfg.PTransient, "p_permanent", fcfg.PPermanent)
	}

	cache := simcache.New(simcache.Options{Capacity: *cacheSize, Dir: *cacheDir})
	var runner simcache.Runner = cache
	if inj != nil {
		runner = inj.Wrap(cache)
	}
	problem := func(excite, horizon float64) *core.Problem {
		p := core.StandardProblem(excite, horizon)
		p.Retry = core.RetryPolicy{MaxAttempts: *runRetries + 1, BaseDelay: *retryBase}
		p.RunTimeout = *runTimeout
		return p // Runner stays nil: the worker fronts it with the chain below
	}
	wkr, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator:    *coordinator,
		ID:             *id,
		Problem:        problem,
		Runner:         runner,
		Concurrency:    *concurrency,
		MaxLeasePoints: *maxLease,
		Cache:          cache,
		PeerAddr:       *peerListen,
		PeerAdvertise:  *peerAdvertise,
		PeerTimeout:    *peerTimeout,
		Log:            logger,
	})
	if err != nil {
		return err
	}
	if inj != nil {
		// A Kill draw takes the whole daemon down mid-lease, the way a
		// crashed simnode process would vanish from the fleet.
		inj.OnKill(wkr.Kill)
	}

	fmt.Fprintf(w, "simnode worker %s joining fleet at %s\n", wkr.ID(), *coordinator)
	err = wkr.Run(ctx)
	switch {
	case err == nil:
		fmt.Fprintf(w, "simnode worker %s drained cleanly\n", wkr.ID())
	case ctx.Err() != nil && errors.Is(err, context.Canceled):
		// A signal ended the run; not a failure.
		fmt.Fprintf(w, "simnode worker %s stopped\n", wkr.ID())
		return nil
	}
	return err
}
