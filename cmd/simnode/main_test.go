package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFastEngine(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"avg harvested power", "packets", "wall-clock", "fast engine"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReferenceEngine(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "0.5", "-engine", "ref"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Newton iterations") {
		t.Fatal("reference engine must report Newton work")
	}
}

func TestRunTunedReportsTuner(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "5", "-tuned", "-freq", "60"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "final resonance") {
		t.Fatal("tuned run must report resonance")
	}
}

func TestRunWaveformCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.csv")
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "2", "-waveform", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(data), "\n", 2)[0]
	if head != "t_s,store_V,disp_m,emf_V,res_Hz" {
		t.Fatalf("csv header %q", head)
	}
}

func TestRunRejectsBadEngine(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-engine", "warp"}, &buf); err == nil {
		t.Fatal("unknown engine must fail")
	}
}
