package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// TestRunWorkerServesFleetBuild: the real daemon entrypoint joins an
// httptest coordinator, executes a whole design through the genuine
// StandardProblem + cache chain, and drains cleanly when the coordinator
// shuts down.
func TestRunWorkerServesFleetBuild(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		PollInterval:      2 * time.Millisecond,
	})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- runWorker(context.Background(), []string{
			"-coordinator", ts.URL, "-id", "w-cmd", "-cache-size", "64",
		}, &buf)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for coord.LiveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	p := core.StandardProblem(0.6, 0.5)
	design, err := core.NamedDesign("ccf", len(p.Factors), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := coord.RunDesign(context.Background(), cluster.JobSpec{
		Excite: 0.6, Horizon: 0.5, Responses: p.Responses,
	}, design)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Y) != len(p.Responses) {
		t.Fatalf("fleet build returned %d response columns, want %d", len(ds.Y), len(p.Responses))
	}
	for id, col := range ds.Y {
		if len(col) != design.N() {
			t.Fatalf("response %q has %d rows, want %d", id, len(col), design.N())
		}
	}

	coord.Shutdown()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("worker did not drain cleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exited after coordinator shutdown")
	}
	if !strings.Contains(buf.String(), "drained cleanly") {
		t.Fatalf("worker output missing the drain notice:\n%s", buf.String())
	}
}

// TestRunWorkerValidation pins the daemon's flag contract.
func TestRunWorkerValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := runWorker(context.Background(), nil, &buf); err == nil ||
		!strings.Contains(err.Error(), "-coordinator") {
		t.Fatalf("missing -coordinator must fail, got %v", err)
	}
	if err := runWorker(context.Background(), []string{
		"-coordinator", "http://localhost:1", "-fault-kill", "2",
	}, &buf); err == nil || !strings.Contains(err.Error(), "probability") {
		t.Fatalf("invalid fault probability must fail, got %v", err)
	}
}

// TestRunWorkerStopsOnContext: a cancelled context (the signal path) ends
// the daemon without an error.
func TestRunWorkerStopsOnContext(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		PollInterval:      2 * time.Millisecond,
	})
	defer coord.Shutdown()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- runWorker(ctx, []string{"-coordinator", ts.URL, "-id", "w-sig"}, &buf)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for coord.LiveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("signal stop must not be an error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exited after cancel")
	}
}
