// Command simnode runs one full-system transient simulation of the
// harvester-powered sensor node and prints every performance indicator —
// the "single costly simulation" the DoE flow replaces with surface
// evaluations.
//
// Usage:
//
//	simnode [-horizon 60] [-engine fast|ref] [-freq 45] [-amp 0.6]
//	        [-period 10] [-cap 0.055] [-vth 3.1] [-tuned] [-waveform file.csv]
//	        [-replay trace.csv]
//
// With -serve the process becomes a fleet worker daemon instead: it joins
// an ehdoed coordinator, heartbeats, pulls design-point leases and streams
// results back until a signal or the coordinator's drain stops it:
//
//	simnode -serve -coordinator http://localhost:8080 [-id w-1]
//	        [-concurrency 8] [-cache-dir ./cache] [-fault-kill 0.01]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/node"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tuner"
	"repro/internal/vibration"
)

func main() {
	args := os.Args[1:]
	for i, a := range args {
		if a == "-serve" || a == "--serve" {
			rest := append(append([]string{}, args[:i]...), args[i+1:]...)
			ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
			err := runWorker(ctx, rest, os.Stdout)
			stop()
			if err != nil {
				fmt.Fprintf(os.Stderr, "simnode: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "simnode: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool against args, writing the report to w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simnode", flag.ContinueOnError)
	horizon := fs.Float64("horizon", 60, "simulated duration (s)")
	engine := fs.String("engine", "fast", "engine: fast (linearized state-space) or ref (Newton-Raphson)")
	freq := fs.Float64("freq", 45, "excitation frequency (Hz)")
	amp := fs.Float64("amp", 0.6, "excitation amplitude (m/s²)")
	period := fs.Float64("period", 10, "measurement period (s)")
	capF := fs.Float64("cap", 0.055, "supercapacitor (F)")
	vth := fs.Float64("vth", 3.1, "transmit threshold (V)")
	v0 := fs.Float64("v0", 3.3, "initial store voltage (V)")
	tuned := fs.Bool("tuned", false, "enable the resonance-tuning controller")
	waveform := fs.String("waveform", "", "write decimated waveforms as CSV to this file")
	replay := fs.String("replay", "", "replay a recorded excitation trace (CSV: t_s,accel) instead of the sine source")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := sim.DefaultDesign()
	d.Node.Period = *period
	d.Store.C = *capF
	d.Policy = node.ThresholdPolicy{VThreshold: *vth}
	d.InitialStoreV = *v0
	if *tuned {
		tc := tuner.DefaultConfig()
		tc.Interval = 5
		tc.ActuatorSpeed = 0.5e-3
		d.Tuner = &tc
	}
	var source vibration.Source = vibration.Sine{Amplitude: *amp, Freq: *freq}
	excitation := fmt.Sprintf("%.1f Hz / %.2f m/s²", *freq, *amp)
	if *replay != "" {
		ts, accel, err := readWaveformCSV(*replay)
		if err != nil {
			return err
		}
		rs := newReplaySource(ts, accel)
		source = rs
		excitation = fmt.Sprintf("replay %s (%d samples, ~%.1f Hz)", *replay, len(ts), rs.freq)
	}
	cfg := sim.Config{
		Horizon:         *horizon,
		Source:          source,
		RecordWaveforms: *waveform != "",
		Decimate:        100,
	}
	runEngine := sim.RunFast
	if *engine == "ref" {
		runEngine = sim.RunReference
	} else if *engine != "fast" {
		return fmt.Errorf("unknown engine %q", *engine)
	}
	r, err := runEngine(d, cfg)
	if err != nil {
		return err
	}

	t := report.NewTable(fmt.Sprintf("simnode: %s engine, %.0f s at %s", *engine, *horizon, excitation),
		"indicator", "value", "unit")
	t.AddRow("avg harvested power", r.AvgHarvestedPower*1e6, "µW")
	t.AddRow("harvested energy", r.HarvestedEnergy*1e3, "mJ")
	t.AddRow("consumed energy", r.ConsumedEnergy*1e3, "mJ")
	t.AddRow("net energy margin", r.NetEnergyMargin*1e3, "mJ")
	t.AddRow("final store voltage", r.FinalStoreV, "V")
	t.AddRow("stored energy", r.StoredEnergyEnd, "J")
	t.AddRow("packets", r.Node.Packets, "")
	t.AddRow("measurements", r.Node.Measurements, "")
	t.AddRow("skipped transmissions", r.Node.SkippedTx, "")
	t.AddRow("brownouts", r.Node.Brownouts, "")
	t.AddRow("uptime fraction", r.UptimeFraction, "")
	if math.IsNaN(r.Node.FirstTxTime) {
		t.AddRow("time to first packet", "never", "")
	} else {
		t.AddRow("time to first packet", r.Node.FirstTxTime, "s")
	}
	if d.Tuner != nil {
		t.AddRow("final resonance", r.FinalResFreq, "Hz")
		t.AddRow("tuning energy", r.TuneEnergy*1e3, "mJ")
		t.AddRow("tuner moves", r.TuneMoves, "")
	}
	t.AddRow("integration steps", r.Steps, "")
	if r.NewtonIters > 0 {
		t.AddRow("Newton iterations", r.NewtonIters, "")
	}
	t.AddRow("wall-clock", float64(r.Elapsed.Microseconds())/1e3, "ms")
	fmt.Fprintln(w, t.String())

	if *waveform != "" {
		fig := report.NewFigure("waveforms", "t_s", "value")
		for _, series := range []struct {
			name string
			data []float64
		}{
			{"store_V", r.StoreV}, {"disp_m", r.Disp}, {"emf_V", r.EMF}, {"res_Hz", r.ResFreq},
		} {
			if err := fig.Add(series.name, r.T, series.data); err != nil {
				return err
			}
		}
		if err := os.WriteFile(*waveform, []byte(fig.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "waveforms written to %s\n", *waveform)
	}
	return nil
}
