package main

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// wantCSVError asserts err is a *CSVError anchored to the given line and
// mentioning the fragment.
func wantCSVError(t *testing.T, err error, line int, fragment string) {
	t.Helper()
	var ce *CSVError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v (%T), want *CSVError", err, err)
	}
	if ce.Line != line {
		t.Fatalf("error anchored to line %d, want %d: %v", ce.Line, line, ce)
	}
	if !strings.Contains(ce.Error(), fragment) {
		t.Fatalf("error %q misses %q", ce.Error(), fragment)
	}
}

func TestReadWaveformCSV(t *testing.T) {
	path := writeTrace(t, "t_s,accel\n0,0.1\n0.5,-0.2\n1.0,0.3\n")
	ts, accel, err := readWaveformCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[2] != 1.0 || accel[1] != -0.2 {
		t.Fatalf("parsed %v / %v", ts, accel)
	}
}

func TestReadWaveformCSVEmptyFile(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, ""))
	wantCSVError(t, err, 0, "empty file")
}

func TestReadWaveformCSVHeaderOnly(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, "t_s,accel\n"))
	wantCSVError(t, err, 0, "no data rows")
}

func TestReadWaveformCSVMalformedValue(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, "t_s,accel\n0,0.1\n0.5,oops\n"))
	wantCSVError(t, err, 3, `bad value "oops"`)
}

func TestReadWaveformCSVMalformedTime(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, "t_s,accel\nzero,0.1\n"))
	wantCSVError(t, err, 2, `bad time "zero"`)
}

func TestReadWaveformCSVMissingColumn(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, "t_s,accel\n0,0.1\n0.5\n"))
	wantCSVError(t, err, 3, "want at least 2")
}

func TestReadWaveformCSVNonIncreasingTime(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, "t_s,accel\n0,0.1\n0.5,0.2\n0.5,0.3\n"))
	wantCSVError(t, err, 4, "does not increase")
}

func TestReadWaveformCSVNonFinite(t *testing.T) {
	_, _, err := readWaveformCSV(writeTrace(t, "t_s,accel\n0,NaN\n"))
	wantCSVError(t, err, 2, "non-finite")
}

func TestReplaySourceInterpolates(t *testing.T) {
	src := newReplaySource([]float64{0, 1, 2}, []float64{0, 2, 0})
	for _, tc := range []struct{ t, want float64 }{
		{-1, 0},  // held before the record
		{0.5, 1}, // midpoint of the first segment
		{1, 2},   // exact sample
		{1.75, 0.5},
		{5, 0}, // held past the record
	} {
		if got := src.Accel(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Accel(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
}

func TestReplaySourceDominantFreq(t *testing.T) {
	// One full 1 Hz cycle sampled at 8 points per period: 2 zero crossings
	// per cycle.
	n := 64
	ts := make([]float64, n)
	accel := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) / 8
		accel[i] = math.Sin(2 * math.Pi * ts[i])
	}
	src := newReplaySource(ts, accel)
	if math.Abs(src.DominantFreq(0)-1) > 0.15 {
		t.Fatalf("estimated %g Hz, want ~1", src.DominantFreq(0))
	}
}

// TestRunReplayEndToEnd drives a whole simulation off a synthesized
// 45 Hz trace through the -replay flag.
func TestRunReplayEndToEnd(t *testing.T) {
	var trace strings.Builder
	trace.WriteString("t_s,accel\n")
	for i := 0; i < 400; i++ {
		ts := float64(i) * 0.005
		trace.WriteString(strconv.FormatFloat(ts, 'g', -1, 64) + "," +
			strconv.FormatFloat(0.6*math.Sin(2*math.Pi*45*ts), 'g', -1, 64) + "\n")
	}
	path := writeTrace(t, trace.String())

	var buf bytes.Buffer
	if err := run([]string{"-horizon", "2", "-replay", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replay") {
		t.Fatalf("report must name the replayed trace:\n%s", buf.String())
	}
}
