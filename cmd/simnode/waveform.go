package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/vibration"
)

// CSVError is the typed failure for waveform CSV parsing: it names the
// file and the 1-based line the problem sits on (0 means the file as a
// whole, e.g. an empty file), so a bad row in a long recorded trace is
// findable without bisecting the file.
type CSVError struct {
	Path string
	Line int
	Msg  string
}

func (e *CSVError) Error() string {
	if e.Line == 0 {
		return fmt.Sprintf("waveform csv %s: %s", e.Path, e.Msg)
	}
	return fmt.Sprintf("waveform csv %s: line %d: %s", e.Path, e.Line, e.Msg)
}

// readWaveformCSV parses a recorded excitation trace: a header line
// followed by rows of "t_s,accel[,...]" — the first column is time in
// seconds (strictly increasing), the second acceleration in m/s²; extra
// columns are ignored so files written by -waveform round-trip. Every
// failure is a *CSVError carrying the offending line number.
func readWaveformCSV(path string) (ts, accel []float64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	text := strings.TrimRight(string(raw), "\n")
	if strings.TrimSpace(text) == "" {
		return nil, nil, &CSVError{Path: path, Msg: "empty file"}
	}
	lines := strings.Split(text, "\n")
	if len(lines) < 2 {
		return nil, nil, &CSVError{Path: path, Msg: "no data rows after the header"}
	}
	if fields := strings.Split(lines[0], ","); len(fields) < 2 {
		return nil, nil, &CSVError{Path: path, Line: 1,
			Msg: fmt.Sprintf("header has %d column(s), want at least t_s,accel", len(fields))}
	}
	ts = make([]float64, 0, len(lines)-1)
	accel = make([]float64, 0, len(lines)-1)
	for i, line := range lines[1:] {
		n := i + 2 // 1-based, after the header
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, nil, &CSVError{Path: path, Line: n,
				Msg: fmt.Sprintf("row has %d column(s), want at least 2", len(fields))}
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, nil, &CSVError{Path: path, Line: n,
				Msg: fmt.Sprintf("bad time %q", strings.TrimSpace(fields[0]))}
		}
		a, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, nil, &CSVError{Path: path, Line: n,
				Msg: fmt.Sprintf("bad value %q", strings.TrimSpace(fields[1]))}
		}
		if math.IsNaN(t) || math.IsNaN(a) || math.IsInf(t, 0) || math.IsInf(a, 0) {
			return nil, nil, &CSVError{Path: path, Line: n, Msg: "non-finite sample"}
		}
		if len(ts) > 0 && t <= ts[len(ts)-1] {
			return nil, nil, &CSVError{Path: path, Line: n,
				Msg: fmt.Sprintf("time %g does not increase past %g", t, ts[len(ts)-1])}
		}
		ts = append(ts, t)
		accel = append(accel, a)
	}
	if len(ts) < 2 {
		return nil, nil, &CSVError{Path: path, Msg: "need at least 2 samples to replay"}
	}
	return ts, accel, nil
}

// replaySource drives the simulation from a recorded trace: linear
// interpolation between samples, endpoints held outside the record. The
// dominant frequency is estimated once from the mean zero-crossing rate —
// good enough for the tuner's ground-truth hook on real traces.
type replaySource struct {
	ts, accel []float64
	freq      float64
}

func newReplaySource(ts, accel []float64) *replaySource {
	crossings := 0
	for i := 1; i < len(accel); i++ {
		if (accel[i-1] < 0) != (accel[i] < 0) {
			crossings++
		}
	}
	freq := 0.0
	if span := ts[len(ts)-1] - ts[0]; span > 0 {
		freq = float64(crossings) / (2 * span)
	}
	return &replaySource{ts: ts, accel: accel, freq: freq}
}

func (r *replaySource) Accel(t float64) float64 {
	ts := r.ts
	if t <= ts[0] {
		return r.accel[0]
	}
	if t >= ts[len(ts)-1] {
		return r.accel[len(ts)-1]
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, len(ts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - ts[lo]) / (ts[hi] - ts[lo])
	return r.accel[lo] + frac*(r.accel[hi]-r.accel[lo])
}

func (r *replaySource) DominantFreq(t float64) float64 { return r.freq }

var _ vibration.Source = (*replaySource)(nil)
