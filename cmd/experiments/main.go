// Command experiments regenerates every reproduced table and figure of
// DESIGN.md §5 (and the §6 ablations) at full size and prints them to
// stdout; with -csv DIR it additionally writes one CSV per artifact.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only id] [-csv dir]
//
// where id is one of f1, t1, t2, t3, t4, f2, f3, t5, f4, t6, t7, t8, f5, a1, a5, a6.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// artifact is one runnable experiment.
type artifact struct {
	id   string
	name string
	run  func(experiments.Config) (fmt.Stringer, string, error)
}

func tableArtifact(f func(experiments.Config) (*report.Table, error)) func(experiments.Config) (fmt.Stringer, string, error) {
	return func(cfg experiments.Config) (fmt.Stringer, string, error) {
		t, err := f(cfg)
		if err != nil {
			return nil, "", err
		}
		return t, t.CSV(), nil
	}
}

func figureArtifact(f func(experiments.Config) (*report.Figure, error)) func(experiments.Config) (fmt.Stringer, string, error) {
	return func(cfg experiments.Config) (fmt.Stringer, string, error) {
		fig, err := f(cfg)
		if err != nil {
			return nil, "", err
		}
		return fig, fig.CSV(), nil
	}
}

func main() {
	quickFlag := flag.Bool("quick", false, "run the reduced (benchmark) configuration")
	seed := flag.Int64("seed", 1, "seed for every randomized stage")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	csvDir := flag.String("csv", "", "directory to write one CSV per artifact")
	flag.Parse()

	cfg := experiments.Config{Quick: *quickFlag, Seed: *seed}
	artifacts := []artifact{
		{"f1", "R-F1 tuned vs untuned", figureArtifact(experiments.FigF1TunedVsUntuned)},
		{"t1", "R-T1 engine speedup", tableArtifact(experiments.TabT1EngineSpeedup)},
		{"t2", "R-T2 design comparison", tableArtifact(experiments.TabT2DesignComparison)},
		{"t3", "R-T3 RSM accuracy", tableArtifact(experiments.TabT3RSMAccuracy)},
		{"t4", "R-T4 exploration speed", tableArtifact(experiments.TabT4ExplorationSpeed)},
		{"f2", "R-F2 response surface", figureArtifact(experiments.FigF2Surface)},
		{"f3", "R-F3 trade-off front", figureArtifact(experiments.FigF3Tradeoff)},
		{"t5", "R-T5 optimizers", tableArtifact(experiments.TabT5Optimizers)},
		{"f4", "R-F4 tuning transient", figureArtifact(experiments.FigF4TuningTransient)},
		{"t6", "R-T6 scenarios", tableArtifact(experiments.TabT6Scenarios)},
		{"t7", "R-T7 ANOVA", tableArtifact(experiments.TabT7ANOVA)},
		{"t8", "R-T8 region refinement", tableArtifact(experiments.TabT8Refinement)},
		{"f5", "R-F5 build cost", figureArtifact(experiments.FigF5BuildCost)},
		{"a1", "A1 step-size ablation", tableArtifact(experiments.TabA1StepSize)},
		{"a5", "A5 multiplier models", tableArtifact(experiments.TabA5MultiplierModels)},
		{"a6", "A6 estimator ablation", tableArtifact(experiments.TabA6Estimators)},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	failures := 0
	for _, a := range artifacts {
		if len(selected) > 0 && !selected[a.id] {
			continue
		}
		start := time.Now()
		out, csv, err := a.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", a.name, err)
			failures++
			continue
		}
		fmt.Println(out.String())
		fmt.Printf("(%s generated in %v)\n\n", a.id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, a.id+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				failures++
			}
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
