// Command loadgen is the open-loop load generator for an ehdoed daemon:
// it offers requests at a configured rate for a configured duration —
// arrivals fire on schedule whether or not earlier requests have finished,
// which is what real traffic does — and reports goodput, shed rate and the
// latency distribution (quantiles plus a histogram).
//
//	go run ./cmd/loadgen -url http://localhost:8080 -model ccf \
//	    -qps 500 -duration 10s -mix predict=0.8,sweep=0.15,optimize=0.05
//
// Every request is one attempt, no retries: a shed (429/503) is counted as
// shed, never papered over, so the report reflects what the server
// actually did under the offered load. Use it to find the knee: sweep
// -qps upward until shed_rate lifts off zero, and check the admitted
// latency quantiles stay flat past that point — that flatness is the whole
// point of admission control.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/apiclient"
	"repro/internal/load"
	"repro/internal/serve"
)

type config struct {
	url      string
	model    string
	mix      string
	qps      float64
	duration time.Duration
	timeout  time.Duration
	seed     int64
	uniform  bool
	jsonOut  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "http://localhost:8080", "base URL of the ehdoed daemon")
	flag.StringVar(&cfg.model, "model", "", "registered model the model-backed targets query (required unless -mix is healthz only)")
	flag.StringVar(&cfg.mix, "mix", "predict=1", "traffic mix as name=weight pairs (predict, sweep, optimize, healthz)")
	flag.Float64Var(&cfg.qps, "qps", 100, "offered arrival rate, requests per second")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to offer load")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request timeout")
	flag.Int64Var(&cfg.seed, "seed", 1, "arrival-schedule seed (same seed, same offered schedule)")
	flag.BoolVar(&cfg.uniform, "uniform", false, "uniform arrival spacing instead of Poisson")
	flag.StringVar(&cfg.jsonOut, "json", "", "also write the full report as JSON to this path")
	flag.Parse()

	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	printReport(os.Stdout, rep)
	if cfg.jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(cfg.jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", cfg.jsonOut)
	}
}

// run builds the target set and drives the open-loop generator; split from
// main so the smoke test can exercise the whole path in-process.
func run(ctx context.Context, cfg config) (*load.GenReport, error) {
	weights, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	client := apiclient.New(cfg.url, apiclient.Options{MaxAttempts: 1})

	// Model-backed targets need the factor ranges to build valid bodies;
	// discover them from the server instead of hardcoding the problem.
	var detail serve.ModelDetail
	needsModel := false
	for name := range weights {
		if name != "healthz" {
			needsModel = true
		}
	}
	if needsModel {
		if cfg.model == "" {
			return nil, fmt.Errorf("mix %q needs -model", cfg.mix)
		}
		if err := client.Get(ctx, "/v1/models/"+cfg.model, &detail); err != nil {
			return nil, fmt.Errorf("discovering model %q: %w", cfg.model, err)
		}
		if len(detail.Factors) == 0 || len(detail.Responses) == 0 {
			return nil, fmt.Errorf("model %q has no factors or responses", cfg.model)
		}
	}

	var targets []load.Target
	for name, weight := range weights {
		t, err := buildTarget(client, cfg.model, name, weight, detail)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Name < targets[j].Name })

	return load.Run(ctx, load.GenConfig{
		QPS:      cfg.qps,
		Duration: cfg.duration,
		Targets:  targets,
		Seed:     cfg.seed,
		Uniform:  cfg.uniform,
		Timeout:  cfg.timeout,
	})
}

// parseMix decodes "predict=0.8,sweep=0.2" into weights.
func parseMix(mix string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		switch name {
		case "predict", "sweep", "optimize", "healthz":
		default:
			return nil, fmt.Errorf("mix entry %q: unknown target (want predict, sweep, optimize or healthz)", part)
		}
		w, err := strconv.ParseFloat(raw, 64)
		if err != nil || w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("mix entry %q: weight must be a positive number", part)
		}
		out[name] = w
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q names no targets", mix)
	}
	return out, nil
}

// buildTarget wires one traffic class. Bodies vary deterministically per
// request (a per-target counter walks the factor box), so the stream
// exercises the server rather than replaying one memoizable question.
func buildTarget(client *apiclient.Client, model, name string, weight float64, detail serve.ModelDetail) (load.Target, error) {
	var n atomic.Int64
	point := func(i int64) []float64 {
		p := make([]float64, len(detail.Factors))
		for j, f := range detail.Factors {
			frac := float64((i*31+int64(j)*17)%101) / 100
			p[j] = f.Min + frac*(f.Max-f.Min)
		}
		return p
	}
	do := func(in any, path string) func(context.Context) (int, error) {
		return func(ctx context.Context) (int, error) {
			res, err := client.Do(ctx, http.MethodPost, path, in)
			if err != nil {
				return 0, err
			}
			return res.Status, nil
		}
	}
	t := load.Target{Name: name, Weight: weight}
	switch name {
	case "healthz":
		t.Do = func(ctx context.Context) (int, error) {
			res, err := client.Do(ctx, http.MethodGet, "/healthz", nil)
			if err != nil {
				return 0, err
			}
			return res.Status, nil
		}
	case "predict":
		t.Do = func(ctx context.Context) (int, error) {
			return do(serve.PredictRequest{Model: model, Point: point(n.Add(1))}, "/v1/predict")(ctx)
		}
	case "sweep":
		t.Do = func(ctx context.Context) (int, error) {
			i := n.Add(1)
			f := detail.Factors[i%int64(len(detail.Factors))]
			return do(serve.SweepRequest{
				Model:    model,
				Response: detail.Responses[i%int64(len(detail.Responses))],
				Factor:   f.Name,
				Points:   21,
			}, "/v1/sweep")(ctx)
		}
	case "optimize":
		t.Do = func(ctx context.Context) (int, error) {
			i := n.Add(1)
			return do(serve.OptimizeRequest{
				Model:    model,
				Response: detail.Responses[i%int64(len(detail.Responses))],
				Starts:   2,
				Seed:     i,
			}, "/v1/optimize")(ctx)
		}
	default:
		return t, fmt.Errorf("unknown target %q", name)
	}
	return t, nil
}

func printReport(w *os.File, rep *load.GenReport) {
	fmt.Fprintf(w, "offered  %6d requests in %.2fs (%.1f qps offered, %.1f qps goodput)\n",
		rep.Offered, rep.DurationS, rep.OfferedQPS, rep.GoodputQPS)
	fmt.Fprintf(w, "served   %6d\n", rep.Served)
	fmt.Fprintf(w, "shed     %6d (%.1f%%)\n", rep.Shed, rep.ShedRate*100)
	fmt.Fprintf(w, "failed   %6d\n", rep.Failed)
	fmt.Fprintf(w, "latency  p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
	if rep.Shed > 0 {
		fmt.Fprintf(w, "shed lat p50 %.2fms  p99 %.2fms\n", rep.ShedLatency.P50, rep.ShedLatency.P99)
	}
	var names []string
	for name := range rep.ByTarget {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "target   %-10s %6d\n", name, rep.ByTarget[name])
	}
	fmt.Fprintln(w, "histogram (served):")
	for _, b := range rep.Hist {
		if b.Count == 0 {
			continue
		}
		le := "+Inf"
		if b.LeMs >= 0 {
			le = fmt.Sprintf("%gms", b.LeMs)
		}
		fmt.Fprintf(w, "  <= %-8s %6d\n", le, b.Count)
	}
}
