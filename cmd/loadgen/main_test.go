package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rsm"
	"repro/internal/serve"
)

func testModel(t *testing.T) *core.SavedSurfaces {
	t.Helper()
	p := core.StandardProblem(0.6, 1)
	design, err := core.NamedDesign("ccf", len(p.Factors), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.RunDesignParallel(design, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.BuildSurfaces(ds, rsm.FullQuadratic(len(p.Factors)))
	if err != nil {
		t.Fatal(err)
	}
	return s.Save(design.Name, design.N())
}

// TestRunSmoke drives the whole generator path — mix parsing, model
// discovery, target construction, open-loop arrivals — against an
// in-process server. This is the CI loadgen smoke.
func TestRunSmoke(t *testing.T) {
	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Registry().Set("smoke", testModel(t))
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(5 * time.Second)
	}()

	rep, err := run(context.Background(), config{
		url:      ts.URL,
		model:    "smoke",
		mix:      "predict=0.7,sweep=0.2,healthz=0.1",
		qps:      200,
		duration: 300 * time.Millisecond,
		timeout:  2 * time.Second,
		seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("open loop offered nothing")
	}
	if rep.Served == 0 {
		t.Fatalf("nothing served: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d requests failed outright: %+v", rep.Failed, rep)
	}
	if rep.Served+rep.Shed != rep.Offered {
		t.Fatalf("served %d + shed %d != offered %d", rep.Served, rep.Shed, rep.Offered)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency quantiles: %+v", rep.Latency)
	}
	total := 0
	for _, n := range rep.ByTarget {
		total += n
	}
	if total != rep.Offered {
		t.Fatalf("per-target counts %d != offered %d", total, rep.Offered)
	}
}

func TestRunRequiresModelForModelTargets(t *testing.T) {
	_, err := run(context.Background(), config{mix: "predict=1", qps: 1, duration: time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "needs -model") {
		t.Fatalf("want needs -model error, got %v", err)
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("predict=0.8, sweep=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if w["predict"] != 0.8 || w["sweep"] != 0.2 {
		t.Fatalf("weights wrong: %v", w)
	}
	for _, bad := range []string{"", "predict", "predict=0", "predict=-1", "launch=1", "predict=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("mix %q must be rejected", bad)
		}
	}
}
